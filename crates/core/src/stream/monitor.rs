//! The generic sharded monitor: one [`Monitor`] over any [`StreamModel`].
//!
//! [`Core`] is the model-independent machinery — a router that classifies
//! every ingested action through a [`Partitioner`] and feeds it to the
//! per-key [`ShardState`] incremental engines, while tracking the
//! stream-global facts the batch checkers derive from the closed trace
//! (well-formedness, switch actions, input multisets). What a switch
//! action *means*, and how window verdicts map onto witness/error types,
//! comes from the [`StreamModel`] hooks; [`LinMonitor`] and
//! [`SlinMonitor`] are type aliases instantiating the one generic monitor
//! with the two shipped models.

use super::shard::{ArchivedWindow, ShardConfig, ShardState, ShardStatus};
use super::wf::WfTracker;
use super::{
    EventStream, IngestOutcome, MonitorConfig, MonitorReport, MonitorStatus, ShardSummary,
    StreamFailure, StreamModel,
};
use crate::engine::{Chain, EngineError, SearchSeed, SearchStats};
use crate::initrel::InitRelation;
use crate::lin::LinChecker;
use crate::model::{self, ConsistencyModel};
use crate::partition::{
    merge_partition_chains, witness_steps, FallbackReason, SplitOutcome, Step, TracePartition,
};
use crate::slin::SlinChecker;
use crate::ObjAction;
use slin_adt::{Adt, Partitioner};
use slin_obs::Obs;
use slin_trace::{Action, PersistentMultiset, PhaseId, Trace};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// A report cached per stream version (`events` at computation time).
type CachedReport<W, E> = Option<(usize, MonitorReport<W, E>)>;

/// The shared router + shard table behind the monitor.
pub(crate) struct Core<T: Adt, V, K: Ord> {
    adt: Arc<T>,
    shard_cfg: ShardConfig,
    window: Option<usize>,
    /// Shards by class key; the identity shard (engaged by unclassifiable
    /// inputs) lives under `None` and is always alone.
    pub shards: BTreeMap<Option<K>, ShardState<T, V>>,
    /// Stream length so far (the next action's global index).
    pub events: usize,
    /// The closed-trace buffer; `None` when a bounded window is configured
    /// (memory stays O(window)) until something forces reconstruction.
    pub buffer: Option<Trace<ObjAction<T, V>>>,
    /// First switch action's global index, if any.
    pub first_switch: Option<usize>,
    pub wf: WfTracker<T::Input, T::Output, V>,
    /// All inputs invoked so far (any shard) — the global extra pool.
    invoked: PersistentMultiset<T::Input>,
    /// Global validity-bound snapshot per commit index (window mode only;
    /// trimmed as prefixes retire). Persistent: one snapshot is an O(1)
    /// structure-sharing clone of `invoked`, not an O(alphabet) deep copy.
    commit_bounds: BTreeMap<usize, PersistentMultiset<T::Input>>,
    /// Whether any shard has retired a prefix (reports become
    /// window-relative).
    pub prefix_committed: bool,
    /// Why identity routing engaged, if it did (mirrors
    /// `SplitOutcome::fallback`).
    pub fallback: Option<FallbackReason>,
}

impl<T, V, K> Core<T, V, K>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
    K: Ord + Clone,
{
    fn new(adt: Arc<T>, config: &MonitorConfig, phase_bounds: Option<(PhaseId, PhaseId)>) -> Self {
        Core {
            adt,
            shard_cfg: ShardConfig {
                budget: config.budget,
                frontier_cap: config.frontier_cap,
                extension_budget: config.extension_budget,
                epoch_cuts: config.epoch_cuts,
                epoch_force: config.epoch_force,
                retire_budget: config.retire_budget,
                archive_windows: config.archive_windows,
                obs: Obs::noop(),
            },
            window: config.window,
            shards: BTreeMap::new(),
            events: 0,
            buffer: if config.window.is_none() {
                Some(Trace::new())
            } else {
                None
            },
            first_switch: None,
            wf: WfTracker::new(phase_bounds),
            invoked: PersistentMultiset::new(),
            commit_bounds: BTreeMap::new(),
            prefix_committed: false,
            fallback: None,
        }
    }

    /// Stream-global bookkeeping every event goes through, regardless of
    /// routing. Returns the event's global index.
    fn observe(&mut self, action: &ObjAction<T, V>) -> usize {
        let index = self.events;
        self.events += 1;
        self.wf.observe(action, index);
        match action {
            Action::Invoke { input, .. } => self.invoked.insert(input.clone()),
            Action::Respond { .. } => {
                if self.window.is_some() {
                    self.commit_bounds.insert(index, self.invoked.clone());
                }
            }
            Action::Switch { .. } => {
                if self.first_switch.is_none() {
                    self.first_switch = Some(index);
                }
            }
        }
        if let Some(buffer) = &mut self.buffer {
            buffer.push(action.clone());
        }
        index
    }

    /// Reconstructs the closed-trace buffer from the retained windows when
    /// a model that lazily re-checks on switch actions
    /// ([`StreamModel::BUFFERS_ON_SWITCH`]) sees its first switch in
    /// bounded-window mode. If a prefix was already retired the verdict
    /// becomes window-relative (the documented bounded-window trade).
    fn buffer_window_with(&mut self, action: ObjAction<T, V>) {
        if self.buffer.is_some() {
            // Closed-trace mode: `observe` already appended the action.
            return;
        }
        let mut actions: Vec<ObjAction<T, V>> =
            self.window_events().into_iter().map(|(_, a)| a).collect();
        actions.push(action);
        self.buffer = Some(Trace::from_actions(actions));
    }

    /// Routes a (non-switch) action into its shard, creating the shard on
    /// first contact, and applies bounded-window GC afterwards.
    fn route(&mut self, key: Option<K>, action: ObjAction<T, V>, index: usize) -> (usize, bool) {
        let key = if self.fallback.is_some() { None } else { key };
        let window = self.window;
        let adt = Arc::clone(&self.adt);
        let shard_cfg = self.shard_cfg.clone();
        let shard = self
            .shards
            .entry(key)
            .or_insert_with(|| ShardState::new(adt, shard_cfg));
        let out = shard.ingest(action, index);
        if let Some(window) = window {
            if let Some(retired) = shard.maybe_retire(window) {
                self.prefix_committed = true;
                for idx in retired {
                    self.commit_bounds.remove(&idx);
                }
            }
        }
        out
    }

    /// Engages identity routing: rebuilds one fallback shard holding the
    /// whole retained stream (from the buffer when present, otherwise from
    /// the shard windows seeded with their retired prefixes) and drops the
    /// per-key shards. Mirrors `split_trace`'s identity fallback.
    fn collapse_to_identity(&mut self, reason: FallbackReason) {
        self.fallback = Some(reason);
        let mut identity = match &self.buffer {
            Some(buffer) => {
                // Closed-trace mode: replay the whole stream so far into
                // one fresh shard — exactly `split_trace`'s identity
                // partition.
                let mut shard = ShardState::new(Arc::clone(&self.adt), self.shard_cfg.clone());
                for (i, a) in buffer.iter().enumerate() {
                    if !a.is_switch() {
                        shard.ingest(a.clone(), i);
                    }
                }
                shard
            }
            None => {
                // Window mode: retired per-shard prefixes cannot be
                // combined into one identity state for an input that
                // touches every class, so the identity shard restarts from
                // the retained windows, treated as a fresh stream (the
                // documented bounded-window trade for partitioners that
                // decline inputs mid-stream).
                let mut shard = ShardState::new(Arc::clone(&self.adt), self.shard_cfg.clone());
                for (i, a) in self.window_events() {
                    shard.ingest(a, i);
                }
                shard
            }
        };
        identity.counters.retired_events += self
            .shards
            .values()
            .map(|s| s.counters.retired_events)
            .sum::<usize>();
        // The identity shard inherits the per-key witness archives: the
        // archived events are raw (index, action) pairs, so reconstruction
        // keeps working across the collapse.
        let mut adopted: VecDeque<ArchivedWindow<T, V>> = VecDeque::new();
        let mut truncated = false;
        for shard in self.shards.values_mut() {
            let (arch, trunc) = shard.take_archive();
            adopted.extend(arch);
            truncated |= trunc;
        }
        if !adopted.is_empty() || truncated {
            identity.install_archive(adopted, truncated);
        }
        self.shards.clear();
        self.shards.insert(None, identity);
    }

    /// The retained window events of every shard, merged back into global
    /// stream order.
    fn window_events(&self) -> Vec<(usize, ObjAction<T, V>)> {
        let mut all: Vec<(usize, ObjAction<T, V>)> = self
            .shards
            .values()
            .flat_map(|s| s.index_map.iter().copied().zip(s.sub.iter().cloned()))
            .collect();
        all.sort_by_key(|(i, _)| *i);
        all
    }

    /// Aggregated rolling shard verdict (worst wins).
    fn shard_status(&self) -> MonitorStatus {
        let mut status = MonitorStatus::Ok;
        for shard in self.shards.values() {
            match shard.status() {
                ShardStatus::Violated => return MonitorStatus::Violation,
                ShardStatus::BudgetExhausted => status = MonitorStatus::Unknown,
                ShardStatus::Ok => {}
            }
        }
        status
    }

    fn summary(&self) -> ShardSummary {
        let mut out = ShardSummary::default();
        let mut nodes: HashSet<usize> = HashSet::new();
        for shard in self.shards.values() {
            out.extension_searches += shard.counters.extension_searches;
            out.fallback_searches += shard.counters.fallback_searches;
            out.frontier_peak = out.frontier_peak.max(shard.counters.frontier_peak);
            out.retired_events += shard.counters.retired_events;
            out.epoch_cuts += shard.counters.epoch_cuts;
            out.lossy_cuts += shard.counters.lossy_cuts;
            out.search_nodes += shard.counters.search_nodes;
            out.live_configs += shard.live_configs();
            out.window_events += shard.sub.len();
            out.archived_events += shard.archived_len();
            shard.mark_multiset_nodes(&mut nodes);
        }
        self.invoked.mark_nodes(&mut nodes);
        for bound in self.commit_bounds.values() {
            bound.mark_nodes(&mut nodes);
        }
        out.multiset_nodes = nodes.len();
        out
    }

    /// Rebuilds the closed trace and its shard split from the witness
    /// archives plus the live windows — possible exactly when every
    /// GC-retired event is still archived (archival enabled since the
    /// shard's birth, no ring eviction). Returns `None` when nothing was
    /// retired, when any archive is truncated, or (defensively) when the
    /// assembled events do not cover the stream exactly.
    ///
    /// The returned pair feeds the same deterministic
    /// [`model::check_split`] the unbounded-window report runs, so the
    /// resulting verdict — witness included — is byte-identical to an
    /// unGC'd monitor's batch report.
    #[allow(clippy::type_complexity)]
    fn reconstruct_archive(&self) -> Option<(Trace<ObjAction<T, V>>, SplitOutcome<T, V, K>)> {
        if !self.prefix_committed || self.shards.is_empty() {
            return None;
        }
        if self.shards.values().any(|s| s.archive_truncated()) {
            return None;
        }
        let mut parts_events: Vec<(Option<K>, Vec<(usize, ObjAction<T, V>)>)> = Vec::new();
        let mut total = 0usize;
        for (key, shard) in &self.shards {
            let mut events = shard.archived_events();
            events.extend(
                shard
                    .index_map
                    .iter()
                    .copied()
                    .zip(shard.sub.iter().cloned()),
            );
            total += events.len();
            parts_events.push((key.clone(), events));
        }
        if total != self.events {
            return None;
        }
        let mut all: Vec<(usize, ObjAction<T, V>)> = parts_events
            .iter()
            .flat_map(|(_, ev)| ev.iter().cloned())
            .collect();
        all.sort_by_key(|(i, _)| *i);
        if all.iter().enumerate().any(|(p, (i, _))| p != *i) {
            return None;
        }
        let buffer = Trace::from_actions(all.into_iter().map(|(_, a)| a).collect());
        let parts = parts_events
            .into_iter()
            .map(|(key, ev)| {
                let index_map: Vec<usize> = ev.iter().map(|(i, _)| *i).collect();
                TracePartition {
                    key,
                    trace: Trace::from_actions(ev.into_iter().map(|(_, a)| a).collect()),
                    index_map,
                }
            })
            .collect();
        Some((
            buffer,
            SplitOutcome {
                parts,
                fallback: self.fallback,
            },
        ))
    }

    /// The split the batch checkers would compute on the closed trace —
    /// rebuilt from the live shard table.
    fn split(&self) -> SplitOutcome<T, V, K> {
        SplitOutcome {
            parts: self
                .shards
                .iter()
                .map(|(key, shard)| TracePartition {
                    key: key.clone(),
                    trace: shard.sub.clone(),
                    index_map: shard.index_map.clone(),
                })
                .collect(),
            fallback: self.fallback,
        }
    }

    /// The window-relative search + merge used when no closed-trace buffer
    /// exists (bounded-window mode). Returns the merged commit chain in
    /// *global* indices, or the first failing shard's engine outcome, plus
    /// the absorbed stats and whether a monolithic re-derivation ran.
    ///
    /// `key_of` classifies inputs (the monitor's partitioner) — needed only
    /// on the rare merge-bail path, where the per-shard seed states are
    /// assembled into one product state for a monolithic window search.
    #[allow(clippy::type_complexity)]
    fn window_verdict(
        &self,
        key_of: &dyn Fn(&T::Input) -> Option<K>,
    ) -> (Result<Chain<T::Input>, StreamFailure>, SearchStats, bool)
    where
        K: std::hash::Hash + std::fmt::Debug,
    {
        let mut stats = SearchStats::default();
        #[allow(clippy::type_complexity)]
        let mut chains: Vec<(
            &Option<K>,
            &ShardState<T, V>,
            usize,
            Vec<(usize, Vec<T::Input>)>,
            Vec<usize>,
        )> = Vec::new();
        let mut first_error: Option<StreamFailure> = None;
        for (key, shard) in self.shards.iter() {
            let (result, shard_stats) = shard.window_search();
            stats.absorb(&shard_stats);
            match result {
                Ok(Some((seed_index, chain, absorbed))) => {
                    chains.push((key, shard, seed_index, chain, absorbed))
                }
                Ok(None) => {
                    if first_error.is_none() {
                        // After a lossy epoch cut, an exhausted search
                        // space proves nothing: the dropped summary
                        // configurations may have completed.
                        first_error = Some(if shard.lossy() {
                            StreamFailure::BudgetExhausted { nodes: 0 }
                        } else {
                            StreamFailure::NotSatisfied
                        });
                    }
                }
                Err(EngineError::BudgetExhausted { nodes }) => {
                    if first_error.is_none() {
                        first_error = Some(StreamFailure::BudgetExhausted { nodes });
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return (Err(e), stats, false);
        }
        if chains.len() <= 1 {
            let merged = chains
                .pop()
                .map(|(_, shard, _, chain, _)| remap_chain(chain, &shard.index_map))
                .unwrap_or_default();
            return (Ok(merged), stats, false);
        }

        // Rank-compact the global commit indices so the merge machinery can
        // index bounds densely (memory stays O(window)).
        let mut commit_indices: Vec<usize> = self.commit_bounds.keys().copied().collect();
        commit_indices.sort_unstable();
        let bounds_by_rank: Vec<PersistentMultiset<T::Input>> = commit_indices
            .iter()
            .map(|i| self.commit_bounds[i].clone())
            .collect();
        let mut parts: Vec<(VecDeque<Step<T::Input>>, PersistentMultiset<T::Input>)> = Vec::new();
        let mut seed_used: PersistentMultiset<T::Input> = PersistentMultiset::new();
        for (_, shard, seed_index, chain, _) in &chains {
            let ranks: Vec<usize> = shard
                .index_map
                .iter()
                .map(|&global| commit_indices.binary_search(&global).unwrap_or(usize::MAX))
                .collect();
            parts.push((witness_steps(chain, &ranks), shard.pool().clone()));
            seed_used = seed_used.sum(&shard.seed(*seed_index).used);
        }
        if let Some(chain) = merge_partition_chains(&bounds_by_rank, parts, seed_used.clone()) {
            let merged = chain
                .into_iter()
                .map(|(rank, h)| (commit_indices[rank], h))
                .collect();
            return (Ok(merged), stats, false);
        }

        // Merge bailed (cross-bound coupling): re-derive monolithically
        // over the combined window. The retired prefixes have no histories
        // left, so the monolithic state is assembled as a *product* over
        // the shard keys (sound exactly because multi-shard mode implies
        // every input classifies — the Partitioner product contract).
        // Fixing each shard to the seed its own window_search picked is
        // complete, not a guess: inputs of distinct shards are disjoint,
        // so interleaving the per-shard chains in global commit order
        // satisfies every (monotone, per-input) bound the shards already
        // satisfied locally — a completion from exactly these seeds is
        // guaranteed to exist, and the engine's exhaustive search finds
        // one (only a budget trip, reported as such, can stop it).
        let product = ProductAdt {
            adt: &*self.adt,
            key_of,
        };
        let mut state: std::collections::BTreeMap<K, T::State> = std::collections::BTreeMap::new();
        let mut absorbed_globals: HashSet<usize> = HashSet::new();
        for (key, shard, seed_index, _, absorbed) in &chains {
            let key = key
                .as_ref()
                .expect("multi-shard mode classifies every input");
            state.insert(key.clone(), shard.seed(*seed_index).state.clone());
            // A commit absorbed by the chosen seed's symbolic completions
            // is already explained (and its input already consumed) by
            // that seed's state — the product search must not place it
            // again.
            for &w in absorbed {
                absorbed_globals.insert(shard.index_map[w]);
            }
        }
        let events = self.window_events();
        let trace: Vec<ObjAction<T, V>> = events.iter().map(|(_, a)| a.clone()).collect();
        let globals: Vec<usize> = events.iter().map(|(i, _)| *i).collect();
        let commits: Vec<crate::ops::Commit<ProductAdt<'_, '_, T, K>>> = trace
            .iter()
            .enumerate()
            .filter(|(p, _)| !absorbed_globals.contains(&globals[*p]))
            .filter_map(|(p, a)| match a {
                Action::Respond {
                    client,
                    input,
                    output,
                    ..
                } => Some(crate::ops::Commit {
                    index: p,
                    client: *client,
                    input: input.clone(),
                    output: output.clone(),
                }),
                _ => None,
            })
            .collect();
        let empty = PersistentMultiset::new();
        let bounds: Vec<PersistentMultiset<T::Input>> = (0..=trace.len())
            .map(|p| {
                if p < trace.len() && trace[p].is_respond() {
                    self.commit_bounds[&globals[p]].clone()
                } else {
                    empty.clone()
                }
            })
            .collect();
        let engine = crate::engine::CheckerEngine::new(
            &product,
            &commits,
            &bounds,
            self.invoked.clone(),
            crate::engine::SearchBudget::new(self.shard_cfg.budget),
        )
        .with_extra_cap(trace.len());
        let seed = SearchSeed::<ProductAdt<'_, '_, T, K>> {
            history: Vec::new(),
            state,
            used: seed_used,
        };
        match engine.run(seed, &mut |_, _| Some(())) {
            Ok(outcome) => {
                stats.absorb(&outcome.stats);
                match outcome.solution {
                    Some((chain, ())) => (Ok(remap_chain(chain, &globals)), stats, true),
                    None => (Err(StreamFailure::NotSatisfied), stats, true),
                }
            }
            Err(EngineError::BudgetExhausted { nodes }) => {
                (Err(StreamFailure::BudgetExhausted { nodes }), stats, true)
            }
        }
    }
}

/// The product ADT over shard keys: routes every input to its class's
/// component state. Sound exactly where it is used — multi-shard merges,
/// where the [`Partitioner`] contract makes the monitored ADT a product
/// over the keys it emits.
struct ProductAdt<'x, 'a, T: Adt, K> {
    adt: &'a T,
    key_of: &'x dyn Fn(&T::Input) -> Option<K>,
}

impl<T, K> Adt for ProductAdt<'_, '_, T, K>
where
    T: Adt,
    K: Ord + Clone + std::hash::Hash + std::fmt::Debug,
{
    type Input = T::Input;
    type Output = T::Output;
    type State = std::collections::BTreeMap<K, T::State>;

    fn initial(&self) -> Self::State {
        std::collections::BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let key = (self.key_of)(input).expect("multi-shard mode classifies every input");
        let component = state
            .get(&key)
            .cloned()
            .unwrap_or_else(|| self.adt.initial());
        let (next, out) = self.adt.apply(&component, input);
        let mut map = state.clone();
        map.insert(key, next);
        (map, out)
    }
}

fn remap_chain<I>(chain: Vec<(usize, Vec<I>)>, index_map: &[usize]) -> Vec<(usize, Vec<I>)> {
    chain
        .into_iter()
        .map(|(sub, h)| (index_map[sub], h))
        .collect()
}

/// Online monitor for any [`StreamModel`] over a live stream of actions.
/// See the [module docs](crate::stream) for the architecture and the
/// exactness guarantees; [`LinMonitor`] and [`SlinMonitor`] are the two
/// shipped instantiations.
///
/// # Example
///
/// ```
/// use slin_adt::{KvInput, KvKeyPartitioner, KvOutput, KvStore};
/// use slin_core::stream::{LinMonitor, MonitorStatus};
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// let (c1, ph) = (ClientId::new(1), PhaseId::FIRST);
/// let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
///     LinMonitor::owned(KvStore, KvKeyPartitioner);
/// mon.ingest(Action::invoke(c1, ph, KvInput::Put(1, 5)));
/// mon.ingest(Action::respond(c1, ph, KvInput::Put(1, 5), KvOutput::Ack));
/// assert_eq!(mon.status(), MonitorStatus::Ok);
/// let report = mon.report();
/// assert!(report.verdict.is_ok());
/// ```
pub struct Monitor<M, V, P>
where
    M: ConsistencyModel<V>,
    P: Partitioner<M::Adt>,
{
    model: M,
    partitioner: Option<P>,
    config: MonitorConfig,
    pub(crate) core: Core<M::Adt, V, P::Key>,
    /// Lazily-resolved deferred status, cached per stream version so
    /// [`Monitor::status`] can take `&self` on every model.
    status_cache: Mutex<Option<(usize, MonitorStatus)>>,
    cached: CachedReport<M::Witness, M::Error>,
}

/// Online monitor for the paper's (plain) linearizability: the generic
/// [`Monitor`] instantiated with [`LinChecker`].
pub type LinMonitor<T, P, V = ()> = Monitor<LinChecker<T>, V, P>;

/// Online monitor for `(m, n)`-speculative linearizability: the generic
/// [`Monitor`] instantiated with [`SlinChecker`].
///
/// Switch-free streams run on the same incremental shard machinery as
/// [`LinMonitor`] (Theorem 2 equates the two criteria there). The first
/// switch action sends the monitor into **speculative mode**: the shard
/// engines go quiet and the rolling verdict is recomputed lazily — and
/// cached per stream version — by the batch [`SlinChecker`], mirroring the
/// partitioned checker's own monolithic fallback on phase traces.
pub type SlinMonitor<T, R, P> =
    Monitor<SlinChecker<T, R>, <R as InitRelation<<T as Adt>::Input>>::Value, P>;

impl<M, V, P> Monitor<M, V, P>
where
    M: StreamModel<V>,
    <M::Adt as Adt>::Input: Ord,
    V: Clone + PartialEq,
    P: Partitioner<M::Adt>,
{
    /// Creates a monitor around a configured model. `None` for the
    /// partitioner routes every event to the identity shard
    /// (non-partitionable ADTs still stream).
    pub fn from_model(model: M, partitioner: Option<P>, config: MonitorConfig) -> Self {
        let core = Core::new(model.adt_shared(), &config, model.phase_bounds());
        Monitor {
            model,
            partitioner,
            config,
            core,
            status_cache: Mutex::new(None),
            cached: None,
        }
    }

    /// Flips the forced-lossy-epoch-cut knob on the live monitor — the
    /// daemon's backpressure shed. Turning it on lets every shard retire
    /// truncated windows (memory over exactness: later would-be violation
    /// verdicts downgrade to [`MonitorStatus::Unknown`]); the monitor and
    /// all its current and future shards pick the change up immediately.
    pub fn set_epoch_force(&mut self, on: bool) {
        self.config.epoch_force = on;
        self.core.shard_cfg.epoch_force = on;
        for shard in self.core.shards.values_mut() {
            shard.set_epoch_force(on);
        }
    }

    /// Installs an [`Obs`] observer handle on the live monitor: every
    /// current and future shard reports its ingests, engine searches, and
    /// GC cuts through it. The default noop handle keeps instrumentation
    /// zero-cost; see the `slin-obs` crate.
    pub fn set_observer(&mut self, obs: Obs) {
        self.core.shard_cfg.obs = obs.clone();
        for shard in self.core.shards.values_mut() {
            shard.set_observer(obs.clone());
        }
    }

    /// Builder-style form of [`Monitor::set_observer`].
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.set_observer(obs);
        self
    }

    /// Why this stream left the per-key fast path, or `None` while the
    /// shard machinery is still live. Cheap (field reads — nothing is
    /// computed), so it can be polled per metrics tick;
    /// [`MonitorReport::fallback`] is the report-time view of the same
    /// state. An uncertified stream counts as fallen back from its first
    /// switch action on (the verdict defers to monolithic re-checks),
    /// mirroring the report.
    pub fn fallback(&self) -> Option<FallbackReason> {
        self.core.fallback.or_else(|| {
            (self.core.first_switch.is_some() && !self.config.keyed)
                .then_some(FallbackReason::SwitchUncertified)
        })
    }

    fn key_of(&self, input: &<M::Adt as Adt>::Input) -> Option<P::Key> {
        self.partitioner.as_ref().and_then(|p| p.key_of(input))
    }

    /// Ingests the next event of the live stream; O(shard work) — no
    /// re-check of the growing prefix.
    pub fn ingest(&mut self, action: ObjAction<M::Adt, V>) -> IngestOutcome {
        self.cached = None;
        *self
            .status_cache
            .get_mut()
            .expect("status cache lock poisoned") = None;
        let was_quiet = self.core.first_switch.is_some();
        let index = self.core.observe(&action);
        // Keyed phase-trace mode (a valid switch-independence certificate
        // is installed): the shard machinery stays live across switches.
        let keyed = self.config.keyed && self.core.fallback.is_none();
        let (frontier_len, fell_back) = if action.is_switch() {
            if !was_quiet && M::BUFFERS_ON_SWITCH {
                self.core.buffer_window_with(action.clone());
            }
            if keyed {
                // The switch rides along (inert) to the class shard of its
                // pending input, keeping the per-key windows exhaustive.
                let key = self.key_of(action.input());
                if key.is_none() {
                    self.core
                        .collapse_to_identity(FallbackReason::UnclassifiableInput);
                }
                self.core.route(key, action, index)
            } else {
                (0, false)
            }
        } else if was_quiet && !keyed {
            // The stream's verdict is decided (lin) or deferred to lazy
            // batch re-checks over the buffer (slin): shards stay quiet.
            (0, false)
        } else {
            let key = self.key_of(action.input());
            if key.is_none() && self.core.fallback.is_none() {
                self.core
                    .collapse_to_identity(FallbackReason::UnclassifiableInput);
            }
            self.core.route(key, action, index)
        };
        IngestOutcome {
            index,
            frontier_len,
            fell_back,
            status: self.quick_status(),
        }
    }

    /// O(1) rolling status. For models that defer on switch actions
    /// (speculative mode) this reports [`MonitorStatus::Deferred`] instead
    /// of forcing a batch re-check; [`Monitor::status`] resolves it.
    pub fn quick_status(&self) -> MonitorStatus {
        if self.core.first_switch.is_some() {
            if M::QUIET_STATUS == MonitorStatus::Deferred {
                if let Some((at, status)) = *self
                    .status_cache
                    .lock()
                    .expect("status cache lock poisoned")
                {
                    if at == self.core.events {
                        return status;
                    }
                }
            }
            return M::QUIET_STATUS;
        }
        if self.core.wf.first_foreign.is_some() || self.core.wf.has_violation() {
            return MonitorStatus::IllFormed;
        }
        self.core.shard_status()
    }

    /// The exact rolling verdict. Cheap on switch-free streams; in
    /// speculative mode it runs (and caches per stream version) one batch
    /// check of the retained trace.
    pub fn status(&self) -> MonitorStatus {
        let quick = self.quick_status();
        if quick != MonitorStatus::Deferred {
            return quick;
        }
        let buffer = self
            .core
            .buffer
            .as_ref()
            .expect("deferred statuses buffer the stream");
        let status = match self.model.check_monolithic(buffer).0 {
            Ok(_) => MonitorStatus::Ok,
            Err(e) => M::status_of_error(&e),
        };
        *self
            .status_cache
            .lock()
            .expect("status cache lock poisoned") = Some((self.core.events, status));
        status
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.core.events
    }

    /// Number of live shards.
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Aggregated shard-machinery counters at the current stream position
    /// (the same [`ShardSummary`] the final report carries) — lets load
    /// drivers sample the retained-memory proxy mid-stream without paying
    /// for a report derivation.
    pub fn shard_summary(&self) -> ShardSummary {
        self.core.summary()
    }

    /// Drains a stream sequentially; returns the final rolling status
    /// (resolving speculative deferral).
    pub fn drive<S: EventStream<ObjAction<M::Adt, V>>>(&mut self, mut stream: S) -> MonitorStatus {
        while let Some(action) = stream.next_event() {
            self.ingest(action);
        }
        self.status()
    }
}

impl<M, V, P> Monitor<M, V, P>
where
    M: StreamModel<V> + Sync,
    M::Adt: Sync,
    <M::Adt as Adt>::Input: Ord + Send + Sync,
    <M::Adt as Adt>::Output: Sync,
    M::Witness: Send,
    M::Error: Send,
    V: Clone + PartialEq + Sync,
    P: Partitioner<M::Adt>,
{
    /// The full forensic report. With an unbounded window this is
    /// **byte-identical** to the model's batch check on the closed trace
    /// (witness included); with a bounded window it is window-relative
    /// (see the [module docs](crate::stream)) and flagged by
    /// [`MonitorReport::prefix_committed`].
    pub fn report(&mut self) -> MonitorReport<M::Witness, M::Error> {
        if let Some((at, report)) = &self.cached {
            if *at == self.core.events {
                return report.clone();
            }
        }
        let report = self.compute_report();
        self.cached = Some((self.core.events, report.clone()));
        report
    }

    fn compute_report(&self) -> MonitorReport<M::Witness, M::Error> {
        let core = &self.core;
        let quiet = core.first_switch.is_some();
        let base = MonitorReport {
            verdict: Err(self.model.stream_error(StreamFailure::NotSatisfied)),
            events: core.events,
            shards: core.shards.len(),
            fallback: core.fallback.or(if quiet {
                Some(FallbackReason::SwitchUncertified)
            } else {
                None
            }),
            remerged: false,
            prefix_committed: core.prefix_committed,
            reconstructed: false,
            stats: SearchStats::default(),
            shard: core.summary(),
        };
        if let Some(buffer) = &core.buffer {
            // Keyed phase-trace mode: a certified partitioner resolves the
            // deferred verdict through the model's keyed batch check — the
            // per-class searches stay sharded across switches instead of
            // engaging the monolithic identity fallback.
            if quiet && self.config.keyed && core.fallback.is_none() {
                if let Some(sv) = self
                    .partitioner
                    .as_ref()
                    .and_then(|p| self.model.check_keyed(p, buffer))
                {
                    return MonitorReport {
                        verdict: sv.verdict,
                        fallback: sv.report.fallback,
                        remerged: sv.report.remerged,
                        stats: sv.report.stats,
                        ..base
                    };
                }
            }
            // Closed-trace mode: delegate to the generic split checker —
            // the proven-identical partitioned path over the live shard
            // table (one identity partition once the stream went quiet).
            let split = if quiet {
                SplitOutcome {
                    parts: vec![TracePartition {
                        key: None,
                        trace: buffer.clone(),
                        index_map: (0..buffer.len()).collect(),
                    }],
                    fallback: Some(core.fallback.unwrap_or(FallbackReason::SwitchUncertified)),
                }
            } else {
                core.split()
            };
            let sv = model::check_split(&self.model, &split, buffer);
            return MonitorReport {
                verdict: sv.verdict,
                remerged: sv.report.remerged,
                stats: sv.report.stats,
                ..base
            };
        }
        // Window mode: batch precedence (switch / signature,
        // well-formedness, search) over the retained window.
        if let Some(index) = core.first_switch {
            return MonitorReport {
                verdict: Err(self.model.stream_error(StreamFailure::Switch { index })),
                ..base
            };
        }
        if let Some(index) = core.wf.first_foreign {
            return MonitorReport {
                verdict: Err(self.model.stream_error(StreamFailure::Foreign { index })),
                ..base
            };
        }
        if let Some(e) = core.wf.first_error() {
            return MonitorReport {
                verdict: Err(self.model.stream_error(StreamFailure::IllFormed(e))),
                ..base
            };
        }
        // Witness archival: when every retired event is still archived,
        // rebuild the closed trace and run the exact batch-identical split
        // check the unbounded monitor would run — the verdict (witness
        // included) stops being window-relative.
        if let Some((buffer, split)) = core.reconstruct_archive() {
            core.shard_cfg.obs.archive_reconstruction();
            let sv = model::check_split(&self.model, &split, &buffer);
            return MonitorReport {
                verdict: sv.verdict,
                remerged: sv.report.remerged,
                reconstructed: true,
                stats: sv.report.stats,
                ..base
            };
        }
        let (merged, stats, remerged) = core.window_verdict(&|i| self.key_of(i));
        let verdict = match merged {
            Ok(chain) => Ok(self.model.stream_witness(chain, &stats)),
            Err(failure) => Err(self.model.stream_error(failure)),
        };
        MonitorReport {
            verdict,
            remerged,
            stats,
            ..base
        }
    }

    /// Drains a stream through **per-key shard workers**: the router (this
    /// thread) classifies each event and hands it to the worker owning its
    /// shard over a channel; workers run the incremental shard engines in
    /// parallel and are merged back at stream end. Final states, statuses
    /// and reports are identical to [`Monitor::drive`] at every thread
    /// count (each shard's state is a pure function of its own event
    /// subsequence, which routing preserves in order).
    ///
    /// An event the shard workers cannot own — a switch action or an
    /// unclassifiable input — drains and merges the workers, then the rest
    /// of the stream runs inline.
    pub fn drive_parallel<S>(&mut self, mut stream: S) -> MonitorStatus
    where
        S: EventStream<ObjAction<M::Adt, V>>,
        M::Adt: Send,
        <M::Adt as Adt>::Output: Send,
        <M::Adt as Adt>::State: Send,
        V: Send,
    {
        let threads = if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let Some(partitioner) = &self.partitioner else {
            return self.drive(stream);
        };
        if threads <= 1 || self.core.fallback.is_some() || self.core.first_switch.is_some() {
            return self.drive(stream);
        }

        enum WorkerMsg<T: Adt, V, K> {
            /// An existing shard moves to the worker that now owns its key.
            Adopt(K, Box<ShardState<T, V>>),
            Event(usize, K, ObjAction<T, V>),
        }

        let adt = Arc::clone(&self.core.adt);
        let shard_cfg = self.core.shard_cfg.clone();
        let window = self.core.window;
        let mut assignment: BTreeMap<P::Key, usize> = BTreeMap::new();
        let mut next_worker = 0usize;
        let mut leftover: Option<ObjAction<M::Adt, V>> = None;

        let core = &mut self.core;
        let (maps, retired) = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = std::sync::mpsc::channel::<WorkerMsg<M::Adt, V, P::Key>>();
                senders.push(tx);
                let adt = Arc::clone(&adt);
                let shard_cfg = shard_cfg.clone();
                handles.push(scope.spawn(move || {
                    let mut shards: BTreeMap<P::Key, ShardState<M::Adt, V>> = BTreeMap::new();
                    let mut retired: Vec<usize> = Vec::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            WorkerMsg::Adopt(key, shard) => {
                                shards.insert(key, *shard);
                            }
                            WorkerMsg::Event(index, key, action) => {
                                let shard = shards.entry(key).or_insert_with(|| {
                                    ShardState::new(Arc::clone(&adt), shard_cfg.clone())
                                });
                                shard.ingest(action, index);
                                if let Some(w) = window {
                                    if let Some(r) = shard.maybe_retire(w) {
                                        retired.extend(r);
                                    }
                                }
                            }
                        }
                    }
                    (shards, retired)
                }));
            }
            while let Some(action) = stream.next_event() {
                if action.is_switch() {
                    leftover = Some(action);
                    break;
                }
                let Some(key) = partitioner.key_of(action.input()) else {
                    leftover = Some(action);
                    break;
                };
                let index = core.observe(&action);
                let worker = *assignment.entry(key.clone()).or_insert_with(|| {
                    let w = next_worker % threads;
                    next_worker += 1;
                    w
                });
                if let Some(existing) = core.shards.remove(&Some(key.clone())) {
                    senders[worker]
                        .send(WorkerMsg::Adopt(key.clone(), Box::new(existing)))
                        .expect("worker alive");
                }
                senders[worker]
                    .send(WorkerMsg::Event(index, key, action))
                    .expect("worker alive");
            }
            drop(senders);
            let mut maps = Vec::new();
            let mut retired_all = Vec::new();
            for h in handles {
                let (m, r) = h.join().expect("shard worker panicked");
                maps.push(m);
                retired_all.extend(r);
            }
            (maps, retired_all)
        });
        for map in maps {
            for (key, shard) in map {
                self.core.shards.insert(Some(key), shard);
            }
        }
        if !retired.is_empty() {
            self.core.prefix_committed = true;
            for index in retired {
                self.core.commit_bounds.remove(&index);
            }
        }
        if let Some(action) = leftover {
            self.ingest(action);
        }
        self.drive(stream)
    }
}

impl<T, V, P> Monitor<LinChecker<T>, V, P>
where
    T: Adt,
    T::Input: Ord,
    V: Clone + PartialEq,
    P: Partitioner<T>,
{
    /// Creates a plain-linearizability monitor owning its ADT, with the
    /// default configuration. The monitor is `'static` and can live in a
    /// daemon tenant table.
    pub fn owned(adt: T, partitioner: P) -> Self {
        Self::owned_with_config(adt, partitioner, MonitorConfig::default())
    }

    /// Creates a plain-linearizability monitor owning its ADT, with an
    /// explicit configuration (the config's budget and threads configure
    /// the report-time batch checks too).
    pub fn owned_with_config(adt: T, partitioner: P, config: MonitorConfig) -> Self {
        let model = LinChecker::owned(adt)
            .with_budget(config.budget)
            .with_threads(config.threads);
        Monitor::from_model(model, Some(partitioner), config)
    }

    /// Creates a plain-linearizability monitor for a borrowed ADT by
    /// cloning it, with the default configuration.
    #[deprecated(
        since = "0.1.0",
        note = "monitors own their model now: use `LinMonitor::owned(adt, partitioner)`"
    )]
    pub fn new(adt: &T, partitioner: P) -> Self
    where
        T: Clone,
    {
        Self::owned(adt.clone(), partitioner)
    }

    /// Creates a plain-linearizability monitor for a borrowed ADT by
    /// cloning it, with an explicit configuration.
    #[deprecated(
        since = "0.1.0",
        note = "monitors own their model now: use \
                `LinMonitor::owned_with_config(adt, partitioner, config)`"
    )]
    pub fn with_config(adt: &T, partitioner: P, config: MonitorConfig) -> Self
    where
        T: Clone,
    {
        Self::owned_with_config(adt.clone(), partitioner, config)
    }
}

impl<T, R, P> Monitor<SlinChecker<T, R>, R::Value, P>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
    P: Partitioner<T>,
{
    /// Creates a speculative-linearizability monitor around a configured
    /// batch checker (which owns the ADT and fixes the phase bounds).
    pub fn from_checker(checker: SlinChecker<T, R>, partitioner: P, config: MonitorConfig) -> Self {
        Monitor::from_model(checker, Some(partitioner), config)
    }

    /// Creates a speculative-linearizability monitor around a configured
    /// batch checker for phase `(m, n)`.
    ///
    /// The `adt` and `(m, n)` arguments are redundant with the checker's
    /// own configuration (kept for signature compatibility); mismatched
    /// phase bounds panic rather than silently letting the checker's
    /// bounds win.
    ///
    /// # Panics
    ///
    /// Panics when `(m, n)` differs from the checker's configured phase
    /// bounds.
    #[deprecated(
        since = "0.1.0",
        note = "monitors own their model now: use \
                `SlinMonitor::from_checker(checker, partitioner, config)`"
    )]
    pub fn new(
        checker: SlinChecker<T, R>,
        _adt: &T,
        m: PhaseId,
        n: PhaseId,
        partitioner: P,
        config: MonitorConfig,
    ) -> Self {
        assert_eq!(
            checker.phase_bounds(),
            Some((m, n)),
            "the monitor's phase bounds come from the checker"
        );
        Self::from_checker(checker, partitioner, config)
    }
}
