//! Parsing traces into operations and per-index input summaries.
//!
//! Shared plumbing for the checkers: the sequence of previous inputs
//! `inputs(t, i)` (Definition 9), the identification of commit / init /
//! abort indices (Definitions 8, 22–24), and the pairing of invocations
//! with their responses used by the classical checker.

use crate::ObjAction;
use slin_adt::Adt;
use slin_trace::{Action, ClientId, PersistentMultiset, PhaseId, Trace};

/// The sequence of previous inputs `inputs(t, i)`: all inputs *invoked*
/// strictly before index `i` (0-based), in trace order.
///
/// Only [`Action::Invoke`] events contribute: inputs carried by switch
/// actions enter the valid-input set through `ivi` (Definition 25) instead.
pub fn inputs_before<T: Adt, V>(t: &Trace<ObjAction<T, V>>, i: usize) -> Vec<T::Input> {
    t.as_slice()[..i]
        .iter()
        .filter_map(|a| match a {
            Action::Invoke { input, .. } => Some(input.clone()),
            _ => None,
        })
        .collect()
}

/// For every index `i`, the multiset of inputs invoked strictly before `i`
/// (the `elems(inputs(t, i))` of Definition 10), computed incrementally.
///
/// The snapshots are [`PersistentMultiset`]s sharing structure with their
/// neighbours, so materialising all `n + 1` of them costs O(n) — pushing
/// one more snapshot is an O(1) clone plus an O(log alphabet) insert, not
/// an O(alphabet) deep copy.
pub fn input_multisets<T: Adt, V>(t: &Trace<ObjAction<T, V>>) -> Vec<PersistentMultiset<T::Input>> {
    let mut out = Vec::with_capacity(t.len() + 1);
    let mut cur: PersistentMultiset<T::Input> = PersistentMultiset::new();
    out.push(cur.clone());
    for a in t.iter() {
        if let Action::Invoke { input, .. } = a {
            cur.insert(input.clone());
        }
        out.push(cur.clone());
    }
    out
}

/// The multiset of **all** inputs invoked anywhere in the trace — the last
/// element of [`input_multisets`], computed without materialising the
/// per-index prefix multisets (the checkers' extra-input pool).
pub fn total_inputs<T: Adt, V>(t: &Trace<ObjAction<T, V>>) -> PersistentMultiset<T::Input> {
    let mut out: PersistentMultiset<T::Input> = PersistentMultiset::new();
    for a in t.iter() {
        if let Action::Invoke { input, .. } = a {
            out.insert(input.clone());
        }
    }
    out
}

/// A commit index of a trace: a response event (Definition 8 / 22).
#[derive(Debug, PartialEq, Eq)]
pub struct Commit<T: Adt> {
    /// Position of the response in the trace (0-based).
    pub index: usize,
    /// The client responding.
    pub client: ClientId,
    /// The input being answered (the required last element of the commit
    /// history).
    pub input: T::Input,
    /// The output returned (what the commit history must *explain*).
    pub output: T::Output,
}

// Manual impl: the derive would demand `T: Clone`, but only the input and
// output types are cloned.
impl<T: Adt> Clone for Commit<T> {
    fn clone(&self) -> Self {
        Commit {
            index: self.index,
            client: self.client,
            input: self.input.clone(),
            output: self.output.clone(),
        }
    }
}

/// Collects the commit indices of a trace in order.
pub fn commits<T: Adt, V>(t: &Trace<ObjAction<T, V>>) -> Vec<Commit<T>> {
    t.iter()
        .enumerate()
        .filter_map(|(index, a)| match a {
            Action::Respond {
                client,
                input,
                output,
                ..
            } => Some(Commit {
                index,
                client: *client,
                input: input.clone(),
                output: output.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// A switch event (an init index when labelled `m`, an abort index when
/// labelled `n` — Definitions 23–24).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchEvent<I, V> {
    /// Position of the switch in the trace (0-based).
    pub index: usize,
    /// The switching client.
    pub client: ClientId,
    /// The pending input carried by the switch.
    pub input: I,
    /// The switch value.
    pub value: V,
}

/// Collects the switch events labelled with phase `label`.
pub fn switches<T: Adt, V: Clone>(
    t: &Trace<ObjAction<T, V>>,
    label: PhaseId,
) -> Vec<SwitchEvent<T::Input, V>> {
    t.iter()
        .enumerate()
        .filter_map(|(index, a)| match a {
            Action::Switch {
                client,
                phase,
                input,
                value,
            } if *phase == label => Some(SwitchEvent {
                index,
                client: *client,
                input: input.clone(),
                value: value.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// A complete or pending operation, as used by the classical checker:
/// an invocation paired with its response (if any).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation<T: Adt> {
    /// The performing client.
    pub client: ClientId,
    /// Index of the invocation event.
    pub invoke_index: usize,
    /// Index of the response event, or `None` if the operation is pending.
    pub respond_index: Option<usize>,
    /// The invoked input.
    pub input: T::Input,
    /// The returned output, if the operation completed.
    pub output: Option<T::Output>,
}

impl<T: Adt> Operation<T> {
    /// Whether the operation has no response in the trace.
    pub fn is_pending(&self) -> bool {
        self.respond_index.is_none()
    }
}

/// Pairs invocations with responses per client (assumes a well-formed trace
/// with no switch actions; see [`crate::lin::LinError::SwitchAction`]).
pub fn operations<T: Adt, V>(t: &Trace<ObjAction<T, V>>) -> Vec<Operation<T>> {
    let mut open: std::collections::HashMap<ClientId, usize> = std::collections::HashMap::new();
    let mut ops: Vec<Operation<T>> = Vec::new();
    for (i, a) in t.iter().enumerate() {
        match a {
            Action::Invoke { client, input, .. } => {
                let op = Operation {
                    client: *client,
                    invoke_index: i,
                    respond_index: None,
                    input: input.clone(),
                    output: None,
                };
                open.insert(*client, ops.len());
                ops.push(op);
            }
            Action::Respond { client, output, .. } => {
                if let Some(&k) = open.get(client) {
                    ops[k].respond_index = Some(i);
                    ops[k].output = Some(output.clone());
                    open.remove(client);
                }
            }
            Action::Switch { .. } => {}
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_adt::{ConsInput, ConsOutput, Consensus};

    type V = u8;
    type A = ObjAction<Consensus, V>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    fn sample() -> Trace<A> {
        Trace::from_actions(vec![
            Action::invoke(c(1), PhaseId::FIRST, p(1)),
            Action::invoke(c(2), PhaseId::FIRST, p(2)),
            Action::respond(c(2), PhaseId::FIRST, p(2), d(2)),
            Action::switch(c(1), PhaseId::new(2), p(1), 9),
        ])
    }

    #[test]
    fn inputs_before_counts_only_invocations() {
        let t = sample();
        assert_eq!(inputs_before::<Consensus, V>(&t, 0).len(), 0);
        assert_eq!(inputs_before::<Consensus, V>(&t, 2), vec![p(1), p(2)]);
        // The switch at index 3 does not add an input.
        assert_eq!(inputs_before::<Consensus, V>(&t, 4), vec![p(1), p(2)]);
    }

    #[test]
    fn input_multisets_are_cumulative() {
        let t = sample();
        let ms = input_multisets::<Consensus, V>(&t);
        assert_eq!(ms.len(), t.len() + 1);
        assert_eq!(ms[0].len(), 0);
        assert_eq!(ms[2].len(), 2);
        assert_eq!(ms[4].len(), 2);
    }

    #[test]
    fn commits_found() {
        let t = sample();
        let cs = commits::<Consensus, V>(&t);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].index, 2);
        assert_eq!(cs[0].output, d(2));
    }

    #[test]
    fn switches_filtered_by_label() {
        let t = sample();
        assert_eq!(switches::<Consensus, V>(&t, PhaseId::new(2)).len(), 1);
        assert_eq!(switches::<Consensus, V>(&t, PhaseId::new(3)).len(), 0);
    }

    #[test]
    fn operations_pair_inv_with_res() {
        let t = sample();
        let ops = operations::<Consensus, V>(&t);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].client, c(1));
        assert!(ops[0].is_pending() || ops[0].respond_index.is_some());
        assert_eq!(ops[1].output, Some(d(2)));
        // c1 never got a response (it switched) — pending as an operation.
        assert!(ops[0].is_pending());
    }
}
