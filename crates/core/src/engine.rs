//! The shared backtracking **chain-search engine** behind both checkers.
//!
//! The paper's two decision procedures — plain linearizability
//! ([`crate::lin::LinChecker`], Section 4) and speculative linearizability
//! ([`crate::slin::SlinChecker`], Section 5) — both reduce to the same
//! existential search: grow a **chain of commit histories** one element at a
//! time, where every step either
//!
//! 1. *commits* one of the remaining responses (appending its input to the
//!    current history, provided the ADT explains the recorded output and the
//!    per-index validity bound admits the consumed inputs), or
//! 2. *interleaves an extra input* drawn from a bounded pool (an input whose
//!    response never commits, or a duplicated occurrence — the definitions
//!    permit repeated events).
//!
//! The two checkers differ only in their **parameters**, not in the search:
//!
//! | parameter            | `lin`                          | `slin`                                   |
//! |----------------------|--------------------------------|------------------------------------------|
//! | validity bounds      | `elems(inputs(t, i))` (Def. 10)| valid inputs `vi(m, t, finit, i)` (Def. 26) |
//! | seed history         | empty                          | LCP of the init interpretations (Def. 31) |
//! | extra-input cap      | `t.len()`                      | none (pool-bounded)                      |
//! | leaf oracle          | trivially succeeds             | abort feasibility (Abort-Order, Def. 28) |
//!
//! [`CheckerEngine::run`] performs the search with memoisation on the
//! reached ADT state and consumed-input multiset, under an explicit
//! [`SearchBudget`], and reports [`SearchStats`] either way. The *leaf
//! oracle* decides what "success" means once every commit is placed: it
//! receives the completed chain and the longest history and may veto the
//! leaf (forcing further backtracking), which is how `slin` grafts the
//! existential over abort interpretations onto the shared search.
//!
//! Keeping the search in one place is what makes the two checkers provably
//! comparable (Theorem 2 equates them on switch-free traces — see the
//! `theorem_2_slin_equals_lin_on_switch_free_traces` test) and gives every
//! frontend the same budget/statistics surface.

use crate::ops::Commit;
use slin_adt::Adt;
use slin_trace::PersistentMultiset;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A set of commit indices, one bit per commit.
///
/// Traces of at most 64 commits — the overwhelmingly common case — stay on
/// a single machine word ([`CommitMask::Small`]); wider traces spill into a
/// little-endian word vector ([`CommitMask::Large`]). There is no ceiling:
/// any commit count is representable, so the engine never refuses a trace
/// up front (the former `MAX_TRACKED_COMMITS = 64` bound is gone).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommitMask {
    /// At most 64 commits: one machine word.
    Small(u64),
    /// More than 64 commits: bit `k` lives in word `k / 64`.
    Large(Vec<u64>),
}

impl CommitMask {
    /// The mask with bits `0..n` set — "all `n` commits remaining".
    pub fn full(n: usize) -> Self {
        if n <= 64 {
            CommitMask::Small(full_word(n))
        } else {
            let mut words = vec![u64::MAX; n / 64];
            let rem = n % 64;
            if rem > 0 {
                words.push(full_word(rem));
            }
            CommitMask::Large(words)
        }
    }

    /// Whether no bit is set (every commit placed).
    pub fn is_empty(&self) -> bool {
        match self {
            CommitMask::Small(w) => *w == 0,
            CommitMask::Large(ws) => ws.iter().all(|w| *w == 0),
        }
    }

    /// Whether bit `k` is set.
    pub fn contains(&self, k: usize) -> bool {
        match self {
            CommitMask::Small(w) => k < 64 && w & (1 << k) != 0,
            CommitMask::Large(ws) => ws.get(k / 64).is_some_and(|w| w & (1 << (k % 64)) != 0),
        }
    }

    /// The mask with bit `k` cleared (the child node's remaining set).
    pub fn without(&self, k: usize) -> Self {
        let mut out = self.clone();
        match &mut out {
            CommitMask::Small(w) => {
                debug_assert!(k < 64, "bit outside a small mask");
                *w &= !(1 << k);
            }
            CommitMask::Large(ws) => {
                if let Some(w) = ws.get_mut(k / 64) {
                    *w &= !(1 << (k % 64));
                }
            }
        }
        out
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        match self {
            CommitMask::Small(w) => w.count_ones() as usize,
            CommitMask::Large(ws) => ws.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }
}

/// The word with its lowest `n <= 64` bits set.
fn full_word(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Explicit resource bounds on one chain search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of expanded search nodes before the engine gives up.
    pub max_nodes: usize,
}

impl SearchBudget {
    /// The default node budget (matches the checkers' historical default).
    pub const DEFAULT_MAX_NODES: usize = 2_000_000;

    /// A budget of `max_nodes` expanded nodes.
    pub fn new(max_nodes: usize) -> Self {
        SearchBudget { max_nodes }
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::new(SearchBudget::DEFAULT_MAX_NODES)
    }
}

/// Counters reported by every search, successful or not.
///
/// Frontends aggregate these across init interpretations (see
/// [`crate::slin::SlinReport`]); the benchmark harness prints them as the
/// checker-practicality rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Search nodes expanded (budget unit).
    pub nodes: usize,
    /// Distinct dead states memoised.
    pub memo_entries: usize,
    /// Searches cut short by a memo hit.
    pub memo_hits: usize,
    /// Completed chains handed to the leaf oracle.
    pub leaf_checks: usize,
    /// Longest history built during the search.
    pub max_history_len: usize,
    /// Init interpretations aggregated into these counters (1 for a plain
    /// linearizability search).
    pub interpretations: usize,
}

impl SearchStats {
    /// Accumulates another search's counters into this one (sums, except
    /// `max_history_len` which takes the maximum).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.memo_entries += other.memo_entries;
        self.memo_hits += other.memo_hits;
        self.leaf_checks += other.leaf_checks;
        self.max_history_len = self.max_history_len.max(other.max_history_len);
        self.interpretations += other.interpretations;
    }
}

/// Why the engine abandoned a search without a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The search expanded more nodes than [`SearchBudget::max_nodes`];
    /// carries the node count at the point of giving up.
    BudgetExhausted {
        /// Nodes expanded when the budget tripped.
        nodes: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExhausted { nodes } => {
                write!(f, "search budget exhausted after {nodes} nodes")
            }
        }
    }
}

impl Error for EngineError {}

/// A chain of commit histories: `(trace index, history)` pairs in prefix
/// order — the witness shape shared by both checkers.
pub type Chain<I> = Vec<(usize, Vec<I>)>;

/// The leaf oracle consulted when every commit is placed: receives the
/// completed chain and the longest history, and returns the leaf witness —
/// or `None` to veto the leaf and force further backtracking.
///
/// # Soundness contract
///
/// The engine memoises dead-ends on `(remaining commits, ADT state,
/// consumed-input multiset)` — **not** on the ordered history. A vetoed
/// subtree therefore prunes every other path reaching the same key, so the
/// oracle's verdict must not distinguish two histories that agree on that
/// key: it may depend on the history only through data the key determines.
/// Both frontends satisfy this — `lin`'s oracle is constant, and `slin`'s
/// abort-feasibility is key-invariant for the shipped relations: every
/// history is seeded with the init LCP (making the Init-Order prefix check
/// stable), validity is checked on element *multisets*, and the
/// exact/consensus relations' extension sets distinguish histories only
/// through their first element (determined by the consensus ADT state) or
/// their full sequence (determined by the universal ADT state). An
/// order-sensitive oracle over an ADT whose states merge commuting input
/// orders would need the memo disabled (or keyed on the history) to stay
/// exact.
pub type LeafOracle<'a, I, W> = dyn FnMut(&Chain<I>, &[I]) -> Option<W> + 'a;

/// Where the search starts: a (possibly non-empty) history prefix with its
/// replayed ADT state and consumed-input multiset.
#[derive(Debug)]
pub struct SearchSeed<T: Adt> {
    /// The history every chain element must extend.
    pub history: Vec<T::Input>,
    /// The ADT state reached by `history`.
    pub state: T::State,
    /// The multiset of inputs consumed by `history` (persistent: cloning a
    /// seed, or folding it into a memo key, is O(1)).
    pub used: PersistentMultiset<T::Input>,
}

// Manual impl: the derive would demand `T: Clone`, but only the input and
// state types are cloned.
impl<T: Adt> Clone for SearchSeed<T> {
    fn clone(&self) -> Self {
        SearchSeed {
            history: self.history.clone(),
            state: self.state.clone(),
            used: self.used.clone(),
        }
    }
}

impl<T: Adt> SearchSeed<T> {
    /// The empty seed: initial state, empty history.
    pub fn initial(adt: &T) -> Self {
        SearchSeed {
            history: Vec::new(),
            state: adt.initial(),
            used: PersistentMultiset::new(),
        }
    }

    /// Seeds the search with `history` (replayed from the initial state) —
    /// how the speculative checker plants the init-interpretation LCP.
    pub fn from_history(adt: &T, history: Vec<T::Input>) -> Self {
        let state = adt.run(&history);
        let used = PersistentMultiset::elems(&history);
        SearchSeed {
            history,
            state,
            used,
        }
    }
}

/// The result of a completed (non-erroring) search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome<I, W> {
    /// `Some((chain, leaf_witness))` when a chain satisfying the leaf oracle
    /// exists; `None` when the search space is exhausted.
    pub solution: Option<(Chain<I>, W)>,
    /// Counters for this search.
    pub stats: SearchStats,
}

/// The shared chain-search engine. See the module docs for the search it
/// performs and the parameters distinguishing the two frontends.
pub struct CheckerEngine<'s, T: Adt> {
    adt: &'s T,
    commits: &'s [Commit<T>],
    /// Per-trace-index multiset bound on the inputs a history reaching that
    /// index may consume (`elems(inputs(t, i))` for `lin`, `vi` for `slin`).
    bounds: &'s [PersistentMultiset<T::Input>],
    /// Pool bounding the extra inputs the chain may interleave.
    pool: PersistentMultiset<T::Input>,
    /// Cap on the total history length when interleaving extras (`None`:
    /// pool-bounded only).
    extra_cap: Option<usize>,
    budget: SearchBudget,
}

/// Memoisation key: committed set, ADT state, consumed-input multiset.
///
/// [`PersistentMultiset`] hashes through its incrementally-maintained
/// commutative fingerprint and clones in O(1), so building this key is
/// O(1) — the former representation re-collected and re-sorted the full
/// multiset into a canonical `Vec` on every node.
type MemoKey<T> = (
    CommitMask,
    <T as Adt>::State,
    PersistentMultiset<<T as Adt>::Input>,
);

impl<'s, T: Adt> CheckerEngine<'s, T>
where
    T::Input: Ord,
{
    /// Creates an engine over the given commits and validity bounds. Any
    /// commit count is accepted ([`CommitMask`] has no ceiling).
    pub fn new(
        adt: &'s T,
        commits: &'s [Commit<T>],
        bounds: &'s [PersistentMultiset<T::Input>],
        pool: PersistentMultiset<T::Input>,
        budget: SearchBudget,
    ) -> Self {
        CheckerEngine {
            adt,
            commits,
            bounds,
            pool,
            extra_cap: None,
            budget,
        }
    }

    /// Caps the total history length reachable by extra-input moves.
    pub fn with_extra_cap(mut self, cap: usize) -> Self {
        self.extra_cap = Some(cap);
        self
    }

    /// Runs the search from `seed`. The `leaf` oracle is consulted whenever
    /// every commit has been placed; returning `None` vetoes the leaf and
    /// the search backtracks.
    ///
    /// # Errors
    ///
    /// [`EngineError::BudgetExhausted`] when more than
    /// [`SearchBudget::max_nodes`] nodes are expanded.
    pub fn run<W>(
        &self,
        seed: SearchSeed<T>,
        leaf: &mut LeafOracle<'_, T::Input, W>,
    ) -> Result<SearchOutcome<T::Input, W>, EngineError> {
        let remaining = CommitMask::full(self.commits.len());
        let mut dfs = Dfs {
            engine: self,
            seed_history: seed.history.clone(),
            leaf,
            memo: HashSet::new(),
            stats: SearchStats {
                interpretations: 1,
                ..SearchStats::default()
            },
        };
        let mut chain: Chain<T::Input> = Vec::new();
        let mut hist = seed.history;
        let solution = dfs
            .dfs(seed.state, seed.used, &mut hist, remaining, &mut chain)?
            .map(|w| (chain, w));
        let mut stats = dfs.stats;
        stats.memo_entries = dfs.memo.len();
        Ok(SearchOutcome { solution, stats })
    }
}

struct Dfs<'e, 's, T: Adt, W> {
    engine: &'e CheckerEngine<'s, T>,
    seed_history: Vec<T::Input>,
    leaf: &'e mut LeafOracle<'e, T::Input, W>,
    memo: HashSet<MemoKey<T>>,
    stats: SearchStats,
}

impl<T: Adt, W> Dfs<'_, '_, T, W>
where
    T::Input: Ord,
{
    fn memo_key(
        &self,
        remaining: &CommitMask,
        state: &T::State,
        used: &PersistentMultiset<T::Input>,
    ) -> MemoKey<T> {
        (remaining.clone(), state.clone(), used.clone())
    }

    fn dfs(
        &mut self,
        state: T::State,
        used: PersistentMultiset<T::Input>,
        hist: &mut Vec<T::Input>,
        remaining: CommitMask,
        chain: &mut Chain<T::Input>,
    ) -> Result<Option<W>, EngineError> {
        let eng = self.engine;
        self.stats.max_history_len = self.stats.max_history_len.max(hist.len());
        if remaining.is_empty() {
            // Every commit is placed: consult the leaf oracle with the
            // longest history on the chain (the seed history when the trace
            // has no commits at all).
            self.stats.leaf_checks += 1;
            let longest = chain
                .last()
                .map(|(_, h)| h.as_slice())
                .unwrap_or(&self.seed_history);
            return Ok((self.leaf)(chain, longest));
        }
        self.stats.nodes += 1;
        if self.stats.nodes > eng.budget.max_nodes {
            return Err(EngineError::BudgetExhausted {
                nodes: self.stats.nodes,
            });
        }
        let key = self.memo_key(&remaining, &state, &used);
        if self.memo.contains(&key) {
            self.stats.memo_hits += 1;
            return Ok(None);
        }

        // Prune: a remaining commit whose validity bound no longer contains
        // the consumed inputs can never be committed from here.
        for (k, c) in eng.commits.iter().enumerate() {
            if remaining.contains(k) && !used.is_subset_of(&eng.bounds[c.index]) {
                self.memo.insert(key);
                return Ok(None);
            }
        }

        // Move 1: commit one of the remaining responses next on the chain.
        for (k, c) in eng.commits.iter().enumerate() {
            if !remaining.contains(k) {
                continue;
            }
            let mut used2 = used.clone();
            used2.insert(c.input.clone());
            if !used2.is_subset_of(&eng.bounds[c.index]) {
                continue;
            }
            let (state2, out) = eng.adt.apply(&state, &c.input);
            if out != c.output {
                continue;
            }
            hist.push(c.input.clone());
            chain.push((c.index, hist.clone()));
            let r = self.dfs(state2, used2, hist, remaining.without(k), chain)?;
            if r.is_some() {
                return Ok(r);
            }
            chain.pop();
            hist.pop();
        }

        // Move 2: interleave an extra input from the pool. The candidates
        // are sorted so the search order — and with it every witness and
        // statistic — is a pure function of the inputs, not of hash-map
        // iteration order (the parallel/sequential parity of the
        // speculative checker depends on this).
        if eng.extra_cap.is_none_or(|cap| hist.len() < cap) {
            let mut candidates: Vec<T::Input> = eng
                .pool
                .iter()
                .filter(|(e, c)| used.count(e) < *c)
                .map(|(e, _)| e.clone())
                .collect();
            candidates.sort();
            for e in candidates {
                let mut used2 = used.clone();
                used2.insert(e.clone());
                let (state2, _) = eng.adt.apply(&state, &e);
                hist.push(e);
                let r = self.dfs(state2, used2, hist, remaining.clone(), chain)?;
                if r.is_some() {
                    return Ok(r);
                }
                hist.pop();
            }
        }

        self.memo.insert(key);
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::ObjAction;
    use slin_adt::{ConsInput, ConsOutput, Consensus};
    use slin_trace::{Action, ClientId, PhaseId, Trace};

    type CA = ObjAction<Consensus, ()>;

    fn sample() -> Trace<CA> {
        Trace::from_actions(vec![
            Action::invoke(ClientId::new(1), PhaseId::FIRST, ConsInput::propose(1)),
            Action::invoke(ClientId::new(2), PhaseId::FIRST, ConsInput::propose(2)),
            Action::respond(
                ClientId::new(2),
                PhaseId::FIRST,
                ConsInput::propose(2),
                ConsOutput::decide(2),
            ),
            Action::respond(
                ClientId::new(1),
                PhaseId::FIRST,
                ConsInput::propose(1),
                ConsOutput::decide(2),
            ),
        ])
    }

    #[test]
    fn engine_finds_the_chain_and_reports_stats() {
        let t = sample();
        let commits = ops::commits::<Consensus, ()>(&t);
        let bounds = ops::input_multisets::<Consensus, ()>(&t);
        let pool = bounds.last().cloned().unwrap();
        let engine =
            CheckerEngine::new(&Consensus, &commits, &bounds, pool, SearchBudget::default())
                .with_extra_cap(t.len());
        let out = engine
            .run(SearchSeed::initial(&Consensus), &mut |_, _| Some(()))
            .unwrap();
        let (chain, ()) = out.solution.expect("linearizable");
        assert_eq!(chain.len(), 2);
        assert!(out.stats.nodes > 0);
        assert_eq!(out.stats.interpretations, 1);
        assert!(out.stats.leaf_checks >= 1);
    }

    #[test]
    fn leaf_veto_forces_exhaustion() {
        let t = sample();
        let commits = ops::commits::<Consensus, ()>(&t);
        let bounds = ops::input_multisets::<Consensus, ()>(&t);
        let pool = bounds.last().cloned().unwrap();
        let engine =
            CheckerEngine::new(&Consensus, &commits, &bounds, pool, SearchBudget::default())
                .with_extra_cap(t.len());
        let out = engine
            .run(SearchSeed::initial(&Consensus), &mut |_, _| {
                Option::<()>::None
            })
            .unwrap();
        assert!(out.solution.is_none());
        assert!(out.stats.leaf_checks >= 1, "leaves were reached and vetoed");
    }

    #[test]
    fn budget_exhaustion_carries_the_node_count() {
        let t = sample();
        let commits = ops::commits::<Consensus, ()>(&t);
        let bounds = ops::input_multisets::<Consensus, ()>(&t);
        let pool = bounds.last().cloned().unwrap();
        let engine = CheckerEngine::new(&Consensus, &commits, &bounds, pool, SearchBudget::new(1))
            .with_extra_cap(t.len());
        let err = engine
            .run(SearchSeed::initial(&Consensus), &mut |_, _| Some(()))
            .unwrap_err();
        assert_eq!(err, EngineError::BudgetExhausted { nodes: 2 });
    }

    #[test]
    fn commit_mask_small_and_large_agree() {
        for n in [0usize, 1, 7, 63, 64, 65, 130, 200] {
            let full = CommitMask::full(n);
            assert_eq!(full.count(), n, "n={n}");
            assert_eq!(full.is_empty(), n == 0, "n={n}");
            for k in 0..n {
                assert!(full.contains(k), "n={n} k={k}");
                let cleared = full.without(k);
                assert!(!cleared.contains(k), "n={n} k={k}");
                assert_eq!(cleared.count(), n - 1, "n={n} k={k}");
                assert!((0..n).filter(|&j| j != k).all(|j| cleared.contains(j)));
            }
            assert!(!full.contains(n), "one past the end is clear");
        }
        assert!(matches!(CommitMask::full(64), CommitMask::Small(u64::MAX)));
        assert!(matches!(CommitMask::full(65), CommitMask::Large(_)));
    }

    #[test]
    fn more_than_64_commits_are_searched_not_refused() {
        // 70 sequential propose(1)/decide(1) pairs: the former 64-commit
        // ceiling would have refused this trace up front.
        let mut actions = Vec::new();
        for k in 0..70u32 {
            let c = ClientId::new(k + 1);
            actions.push(Action::invoke(c, PhaseId::FIRST, ConsInput::propose(1)));
            actions.push(Action::respond(
                c,
                PhaseId::FIRST,
                ConsInput::propose(1),
                ConsOutput::decide(1),
            ));
        }
        let t: Trace<CA> = Trace::from_actions(actions);
        let commits = ops::commits::<Consensus, ()>(&t);
        let bounds = ops::input_multisets::<Consensus, ()>(&t);
        let pool = bounds.last().cloned().unwrap();
        let engine =
            CheckerEngine::new(&Consensus, &commits, &bounds, pool, SearchBudget::default())
                .with_extra_cap(t.len());
        let out = engine
            .run(SearchSeed::initial(&Consensus), &mut |_, _| Some(()))
            .unwrap();
        let (chain, ()) = out.solution.expect("70 chained decisions linearize");
        assert_eq!(chain.len(), 70);
        assert_eq!(chain.last().unwrap().1.len(), 70);
    }

    #[test]
    fn seeded_search_extends_the_seed_history() {
        // Seed with [p(2)]; the only commit must extend it.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(ClientId::new(1), PhaseId::FIRST, ConsInput::propose(1)),
            Action::respond(
                ClientId::new(1),
                PhaseId::FIRST,
                ConsInput::propose(1),
                ConsOutput::decide(2),
            ),
        ]);
        let commits = ops::commits::<Consensus, ()>(&t);
        // Allow the seeded occurrence of p(2) plus the trace's own inputs.
        let mut bounds = ops::input_multisets::<Consensus, ()>(&t);
        for b in &mut bounds {
            b.insert(ConsInput::propose(2));
        }
        let pool = bounds.last().cloned().unwrap();
        let engine =
            CheckerEngine::new(&Consensus, &commits, &bounds, pool, SearchBudget::default());
        let seed = SearchSeed::from_history(&Consensus, vec![ConsInput::propose(2)]);
        let out = engine.run(seed, &mut |_, _| Some(())).unwrap();
        let (chain, ()) = out.solution.expect("explained by the seeded history");
        assert_eq!(
            chain[0].1,
            vec![ConsInput::propose(2), ConsInput::propose(1)]
        );
    }
}
