//! Speculative linearizability (paper Section 5).
//!
//! A trace `t` of a speculation phase `(m, n)` is *(m, n)-speculatively
//! linearizable* (Definition 19) iff it is `(m, n)`-well-formed and **for
//! every** interpretation `finit` of its init actions (switch actions
//! labelled `m`, interpreted through the common relation `rinit`) **there
//! exist** an interpretation `fabort` of its abort actions (switch actions
//! labelled `n`) and a *speculative linearization function* `g` such that
//! (Definitions 20–32):
//!
//! * **Explains** — `f_T(g(i))` is the output returned at every commit
//!   index `i`;
//! * **Validity** — commit and abort histories draw their inputs from the
//!   *valid inputs* `vi(m, t, finit, i)`: inputs invoked before `i` plus the
//!   inputs vouched for by init actions before `i` (`ivi`, Definition 25);
//! * **Commit-Order** — commit histories form a chain under strict prefix;
//! * **Init-Order** — the longest common prefix of all init histories is a
//!   strict prefix of every commit and abort history;
//! * **Abort-Order** — every commit history is a prefix of every abort
//!   history.
//!
//! [`SlinChecker`] decides the quantifier alternation by enumerating the
//! finite candidate interpretations provided by the [`InitRelation`]
//! (exact for the Section 6 singleton relation, bounded-adversarial for the
//! consensus mapping) and running, for each, the same
//! [`crate::engine::CheckerEngine`] chain search as the plain
//! linearizability checker — seeded with the longest common prefix of the
//! init histories and extended with abort feasibility at the leaves.
//!
//! Because the init interpretations are **independent** (the universal
//! quantifier of Definition 19 factors over them), [`SlinChecker::check`]
//! enumerates them **in parallel** across threads. Verdicts are
//! deterministic and identical to [`SlinChecker::check_sequential`]: on
//! failure, the *earliest* interpretation in enumeration order wins — the
//! same one the sequential loop would report.

use crate::engine::{Chain, CheckerEngine, EngineError, SearchBudget, SearchSeed, SearchStats};
use crate::initrel::{CandidateContext, InitRelation};
use crate::model::{self, ConsistencyModel};
use crate::ops::{self, Commit, SwitchEvent};
use crate::partition::{self, PartitionReport};
use crate::stream::{MonitorStatus, StreamFailure, StreamModel};
use crate::ObjAction;
use slin_adt::{Adt, Partitioner};
use slin_trace::seq;
use slin_trace::wf::{self, WellFormednessError};
use slin_trace::{PersistentMultiset, PhaseId, Trace};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default node budget for the backtracking search (per interpretation).
pub const DEFAULT_BUDGET: usize = SearchBudget::DEFAULT_MAX_NODES;

/// Default cap on the number of init interpretations enumerated.
pub const DEFAULT_MAX_INTERPRETATIONS: usize = 16_384;

/// Why a trace failed the speculative linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlinError {
    /// The trace is not `(m, n)`-well-formed (Definition 35).
    IllFormed(WellFormednessError),
    /// An action's phase label lies outside `[m..n]`.
    ForeignAction {
        /// Index of the offending action.
        index: usize,
    },
    /// No speculative linearization function exists for the reported init
    /// interpretation: the trace is not speculatively linearizable.
    NotSpeculativelyLinearizable {
        /// Indices of the init actions, paired with the interpretation
        /// under which the existential fails (empty when `m = 1`).
        interpretation: Vec<(usize, Vec<String>)>,
    },
    /// The search exceeded its node budget before reaching a verdict.
    BudgetExhausted {
        /// Search nodes expanded (in the exhausting interpretation's
        /// search) when the budget tripped.
        nodes: usize,
    },
    /// More candidate interpretations than the configured cap.
    TooManyInterpretations {
        /// The number of interpretations that enumeration would require.
        required: usize,
    },
}

impl fmt::Display for SlinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlinError::IllFormed(e) => write!(f, "trace is not (m, n)-well-formed: {e}"),
            SlinError::ForeignAction { index } => {
                write!(f, "action at index {index} outside the phase signature")
            }
            SlinError::NotSpeculativelyLinearizable { interpretation } => write!(
                f,
                "no speculative linearization function exists (init interpretation at indices {:?})",
                interpretation.iter().map(|(i, _)| *i).collect::<Vec<_>>()
            ),
            SlinError::BudgetExhausted { nodes } => {
                write!(f, "search budget exhausted after {nodes} nodes")
            }
            SlinError::TooManyInterpretations { required } => {
                write!(f, "{required} init interpretations exceed the configured cap")
            }
        }
    }
}

impl Error for SlinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SlinError::IllFormed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WellFormednessError> for SlinError {
    fn from(e: WellFormednessError) -> Self {
        SlinError::IllFormed(e)
    }
}

impl From<EngineError> for SlinError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::BudgetExhausted { nodes } => SlinError::BudgetExhausted { nodes },
        }
    }
}

/// A witness for one init interpretation: the commit chain `g` and the abort
/// histories `fabort` found by the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlinWitness<I> {
    /// The interpretation of each init action: `(trace index, history)`.
    pub init_histories: Vec<(usize, Vec<I>)>,
    /// The commit histories in chain order: `(trace index, history)`.
    pub commit_histories: Vec<(usize, Vec<I>)>,
    /// The abort histories: `(trace index, history)`.
    pub abort_histories: Vec<(usize, Vec<I>)>,
}

/// The outcome of a successful check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlinReport<I> {
    /// How many init interpretations were enumerated (1 when `m = 1`).
    pub interpretations_checked: usize,
    /// The witness found under the first interpretation.
    pub witness: SlinWitness<I>,
    /// Aggregated engine counters over every enumerated interpretation
    /// (identical between the parallel and sequential paths).
    pub stats: SearchStats,
}

/// Decision procedure for `(m, n)`-speculative linearizability.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput, Value};
/// use slin_core::initrel::ConsensusInit;
/// use slin_core::slin::SlinChecker;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// // A Quorum-style phase (1, 2) trace: c1 decides 1, c2 aborts with 1.
/// let (c1, c2) = (ClientId::new(1), ClientId::new(2));
/// let ph1 = PhaseId::new(1);
/// let t: Trace<Action<ConsInput, ConsOutput, Value>> = Trace::from_actions(vec![
///     Action::invoke(c1, ph1, ConsInput::propose(1)),
///     Action::invoke(c2, ph1, ConsInput::propose(2)),
///     Action::respond(c1, ph1, ConsInput::propose(1), ConsOutput::decide(1)),
///     Action::switch(c2, PhaseId::new(2), ConsInput::propose(2), Value::new(1)),
/// ]);
/// let checker = SlinChecker::owned(Consensus::new(), ConsensusInit::new(),
///                                  PhaseId::new(1), PhaseId::new(2));
/// assert!(checker.check(&t).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SlinChecker<T, R> {
    adt: Arc<T>,
    rinit: R,
    m: PhaseId,
    n: PhaseId,
    budget: usize,
    max_interpretations: usize,
    /// Worker threads for interpretation enumeration (0 = one per core).
    threads: usize,
}

impl<T, R> SlinChecker<T, R>
where
    T: Adt,
    T::Input: Ord,
    R: InitRelation<T::Input>,
{
    /// Creates a checker owning `adt` for speculation phase `(m, n)` with
    /// the common relation `rinit`. The checker (and every
    /// `Session`/`Monitor` built from it) is `'static`.
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    pub fn owned(adt: T, rinit: R, m: PhaseId, n: PhaseId) -> Self {
        Self::shared(Arc::new(adt), rinit, m, n)
    }

    /// Creates a checker over an already-shared ADT handle.
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    pub fn shared(adt: Arc<T>, rinit: R, m: PhaseId, n: PhaseId) -> Self {
        assert!(m < n, "a speculation phase (m, n) requires m < n");
        SlinChecker {
            adt,
            rinit,
            m,
            n,
            budget: DEFAULT_BUDGET,
            max_interpretations: DEFAULT_MAX_INTERPRETATIONS,
            threads: 0,
        }
    }

    /// Creates a checker for a borrowed ADT by cloning it (every repo ADT
    /// is a zero-sized unit struct, so the clone is free).
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    #[deprecated(
        since = "0.1.0",
        note = "checkers own their model now: use `SlinChecker::owned(adt, rinit, m, n)` \
                (or `shared(Arc<T>, ..)` to share one allocation)"
    )]
    pub fn new(adt: &T, rinit: R, m: PhaseId, n: PhaseId) -> Self
    where
        T: Clone,
    {
        Self::owned(adt.clone(), rinit, m, n)
    }

    /// Overrides the per-interpretation search node budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the cap on enumerated init interpretations.
    pub fn with_max_interpretations(mut self, cap: usize) -> Self {
        self.max_interpretations = cap;
        self
    }

    /// Overrides the number of worker threads used by [`SlinChecker::check`]
    /// to enumerate init interpretations (0 = one per available core;
    /// 1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Checks `(m, n)`-speculative linearizability of the trace.
    ///
    /// # Errors
    ///
    /// See [`SlinError`]. The check is exact when the [`InitRelation`]
    /// candidate sets are exhaustive (e.g. [`crate::initrel::ExactInit`]);
    /// otherwise it validates the definition over the bounded adversarial
    /// candidate enumeration documented by the relation.
    pub fn check(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError>
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let prep = self.prepare(t)?;
        let threads = self.effective_threads().min(prep.combos);
        if threads <= 1 || prep.combos <= 1 {
            return self.run_sequential(&prep);
        }
        self.run_parallel(&prep, threads)
    }

    /// Single-threaded form of [`SlinChecker::check`]; byte-identical
    /// verdicts (the parallel path resolves races by enumeration order).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade with `.threads(1)` — see `slin_core::session`"
    )]
    pub fn check_sequential(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError> {
        self.check_sequential_impl(t)
    }

    /// The single-threaded enumeration loop (the partitioned path's
    /// per-partition unit of work, and the merge-bail re-derivation).
    fn check_sequential_impl(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError> {
        let prep = self.prepare(t)?;
        self.run_sequential(&prep)
    }

    /// Boolean form of [`SlinChecker::check`].
    pub fn is_speculatively_linearizable(&self, t: &Trace<ObjAction<T, R::Value>>) -> bool
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        self.check(t).is_ok()
    }

    /// P-compositional form of [`SlinChecker::check`]: splits the trace
    /// into independent sub-histories along `partitioner`, checks them
    /// across scoped worker threads, and merges the results.
    ///
    /// Any trace containing a **switch action** engages the identity
    /// fallback (one monolithic check): switch values are interpreted
    /// through the common relation `rinit`, whose candidate histories may
    /// couple independence classes. On switch-free traces — where the
    /// speculative search coincides with the plain one (Theorem 2) —
    /// verdicts and witnesses are byte-identical to [`SlinChecker::check`];
    /// see [`crate::partition`] for the argument. `interpretations_checked`
    /// and [`SlinReport::stats`] measure *work*, which partitioning reduces
    /// by design, so they differ from the monolithic path.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: `Checker::builder(model).partitioner(p).build()` \
                — see `slin_core::session`"
    )]
    pub fn check_partitioned<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError>
    where
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        model::check_partitioned(self, partitioner, t).verdict
    }

    /// Like [`SlinChecker::check_partitioned`], also reporting the
    /// [`PartitionReport`] (partition count, fallback engagement, merged
    /// [`SearchStats`]). One asymmetry with the plain checker's report:
    /// when the single-partition fallback path *fails*, the report's
    /// counters are zero — [`SlinError`] carries no counters to recover
    /// them from.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: the returned `Verdict` carries the \
                `PartitionReport` — see `slin_core::session`"
    )]
    pub fn check_partitioned_with_report<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, PartitionReport)
    where
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let sv = model::check_partitioned(self, partitioner, t);
        (sv.verdict, sv.report)
    }

    /// Like [`SlinChecker::check_partitioned_with_report`], but over an
    /// already-computed [`partition::SplitOutcome`] maintained incrementally
    /// by the caller.
    #[deprecated(
        since = "0.1.0",
        note = "use the generic `slin_core::model::check_split` — one code path \
                for every `ConsistencyModel`"
    )]
    pub fn check_split_with_report<K>(
        &self,
        split: &partition::SplitOutcome<T, R::Value, K>,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, PartitionReport)
    where
        K: Sync,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let sv = model::check_split(self, split, t);
        (sv.verdict, sv.report)
    }

    /// Validates the trace against the phase signature and well-formedness,
    /// and enumerates the candidate interpretation space.
    fn prepare(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<Prepared<T, R::Value>, SlinError> {
        // Signature membership: invocations and responses labelled in
        // [m..n-1], switch actions in [m..n].
        let sig = slin_trace::PhaseSignature::new(self.m, self.n);
        use slin_trace::prop::Signature as _;
        for (index, a) in t.iter().enumerate() {
            if !sig.contains(a) {
                return Err(SlinError::ForeignAction { index });
            }
        }
        wf::check_phase_well_formed(t, self.m, self.n)?;

        let commits = ops::commits::<T, R::Value>(t);
        let inits = ops::switches::<T, R::Value>(t, self.m);
        let aborts = ops::switches::<T, R::Value>(t, self.n);
        let input_ms = ops::input_multisets::<T, R::Value>(t);
        let ctx = CandidateContext::new(t.iter().map(|a| a.input().clone()).collect());

        // Enumerate candidate interpretations of the init actions.
        let per_init: Vec<Vec<Vec<T::Input>>> = inits
            .iter()
            .map(|s| self.rinit.candidates(&s.value, &ctx))
            .collect();
        let combos: usize = per_init.iter().map(|c| c.len().max(1)).product();
        if combos > self.max_interpretations {
            return Err(SlinError::TooManyInterpretations { required: combos });
        }
        Ok(Prepared {
            t_len: t.len(),
            commits,
            inits,
            aborts,
            input_ms,
            ctx,
            per_init,
            combos,
        })
    }

    /// The `idx`-th interpretation in enumeration order: `idx` is read as a
    /// mixed-radix numeral over the per-init candidate counts, least
    /// significant digit first (the order the historical sequential counter
    /// produced).
    fn finit_at<'p>(
        &self,
        prep: &'p Prepared<T, R::Value>,
        idx: usize,
    ) -> Vec<(usize, &'p Vec<T::Input>)> {
        let mut rem = idx;
        prep.inits
            .iter()
            .zip(prep.per_init.iter())
            .filter_map(|(s, cands)| {
                let radix = cands.len().max(1);
                let digit = rem % radix;
                rem /= radix;
                cands.get(digit).map(|h| (s.index, h))
            })
            .collect()
    }

    fn fail_error(finit: &[(usize, &Vec<T::Input>)]) -> SlinError {
        SlinError::NotSpeculativelyLinearizable {
            interpretation: finit
                .iter()
                .map(|(i, h)| (*i, h.iter().map(|x| format!("{x:?}")).collect()))
                .collect(),
        }
    }

    /// The historical enumeration loop, one interpretation at a time.
    fn run_sequential(
        &self,
        prep: &Prepared<T, R::Value>,
    ) -> Result<SlinReport<T::Input>, SlinError> {
        let mut first_witness: Option<SlinWitness<T::Input>> = None;
        let mut stats = SearchStats::default();
        for idx in 0..prep.combos {
            let finit = self.finit_at(prep, idx);
            match self.check_one_interpretation(prep, &finit)? {
                (Some(w), s) => {
                    stats.absorb(&s);
                    if first_witness.is_none() {
                        first_witness = Some(w);
                    }
                }
                (None, _) => return Err(Self::fail_error(&finit)),
            }
        }
        Ok(SlinReport {
            interpretations_checked: prep.combos,
            witness: first_witness.expect("combos >= 1: at least one interpretation checked"),
            stats,
        })
    }

    /// Fans the interpretation indices out over `threads` scoped workers
    /// (worker `w` takes indices `w, w + threads, …`). A shared watermark
    /// of the earliest abnormal index lets workers stop early; the final
    /// verdict is resolved by minimum index, which makes the result
    /// byte-identical to [`SlinChecker::run_sequential`].
    fn run_parallel(
        &self,
        prep: &Prepared<T, R::Value>,
        threads: usize,
    ) -> Result<SlinReport<T::Input>, SlinError>
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        struct WorkerOutcome<I> {
            witness0: Option<SlinWitness<I>>,
            abnormal: Option<(usize, SlinError)>,
            stats: SearchStats,
        }

        let best_abnormal = AtomicUsize::new(usize::MAX);
        let worker_outcomes: Vec<WorkerOutcome<T::Input>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let best_abnormal = &best_abnormal;
                    scope.spawn(move || {
                        let mut out = WorkerOutcome {
                            witness0: None,
                            abnormal: None,
                            stats: SearchStats::default(),
                        };
                        let mut idx = worker;
                        while idx < prep.combos {
                            // Indices beyond the earliest known abnormal one
                            // cannot influence the verdict.
                            if idx > best_abnormal.load(Ordering::Relaxed) {
                                break;
                            }
                            let finit = self.finit_at(prep, idx);
                            match self.check_one_interpretation(prep, &finit) {
                                Ok((Some(w), s)) => {
                                    out.stats.absorb(&s);
                                    if idx == 0 {
                                        out.witness0 = Some(w);
                                    }
                                }
                                Ok((None, _)) => {
                                    best_abnormal.fetch_min(idx, Ordering::Relaxed);
                                    out.abnormal = Some((idx, Self::fail_error(&finit)));
                                    break;
                                }
                                Err(e) => {
                                    best_abnormal.fetch_min(idx, Ordering::Relaxed);
                                    out.abnormal = Some((idx, e));
                                    break;
                                }
                            }
                            idx += threads;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("interpretation worker panicked"))
                .collect()
        });

        if let Some((_, error)) = worker_outcomes
            .iter()
            .filter_map(|w| w.abnormal.clone())
            .min_by_key(|(idx, _)| *idx)
        {
            return Err(error);
        }
        let mut stats = SearchStats::default();
        let mut witness = None;
        for w in worker_outcomes {
            stats.absorb(&w.stats);
            if w.witness0.is_some() {
                witness = w.witness0;
            }
        }
        Ok(SlinReport {
            interpretations_checked: prep.combos,
            witness: witness.expect("worker 0 checked interpretation 0"),
            stats,
        })
    }

    /// Decides the existential part of Definition 19 for one fixed `finit`.
    fn check_one_interpretation(
        &self,
        prep: &Prepared<T, R::Value>,
        finit: &[(usize, &Vec<T::Input>)],
    ) -> Result<InterpretationOutcome<T>, SlinError> {
        // ivi (Definition 25): cumulative, per trace index, the inputs
        // vouched for by init actions strictly before i. The elements of the
        // interpretation histories are ∪-combined (they describe prefixes of
        // one linearization of the previous phase), while each init action's
        // *pending input* is a distinct invocation transferred into this
        // phase and is therefore ⊎-summed — this is what makes the paper's
        // own Backup construction (h ::: pending inputs, Section 2.4) valid
        // when a pending value collides with an init-history element.
        let mut ivi: Vec<PersistentMultiset<T::Input>> = Vec::with_capacity(prep.t_len + 1);
        let mut hist_elems: PersistentMultiset<T::Input> = PersistentMultiset::new();
        let mut pending_sum: PersistentMultiset<T::Input> = PersistentMultiset::new();
        ivi.push(PersistentMultiset::new());
        for i in 0..prep.t_len {
            if let Some((_, h)) = finit.iter().find(|(j, _)| *j == i) {
                let init_input = prep
                    .inits
                    .iter()
                    .find(|s| s.index == i)
                    .map(|s| s.input.clone())
                    .expect("finit indices come from inits");
                hist_elems = hist_elems.union_max(&PersistentMultiset::elems(h));
                pending_sum.insert(init_input);
            }
            ivi.push(hist_elems.sum(&pending_sum));
        }
        // vi (Definition 26): ivi(i) ⊎ elems(inputs(t, i)).
        let vi: Vec<PersistentMultiset<T::Input>> = ivi
            .iter()
            .zip(prep.input_ms.iter())
            .map(|(a, b)| a.sum(b))
            .collect();

        // The longest common prefix of the init histories seeds the chain.
        let lcp: Vec<T::Input> =
            seq::longest_common_prefix(finit.iter().map(|(_, h)| h.as_slice()));
        let constrain_init_order = !finit.is_empty();

        // Abort interpretations are found at the leaves, once the longest
        // commit history is known: the relation enumerates members of
        // rinit(v) extending it.
        let abort_events: Vec<(usize, T::Input, R::Value)> = prep
            .aborts
            .iter()
            .map(|s| (s.index, s.input.clone(), s.value.clone()))
            .collect();
        let extend =
            |value: &R::Value, prefix: &[T::Input]| self.rinit.extensions(value, prefix, &prep.ctx);

        let pool = vi.last().cloned().unwrap_or_else(PersistentMultiset::new);
        let engine = CheckerEngine::new(
            &*self.adt,
            &prep.commits,
            &vi,
            pool,
            SearchBudget::new(self.budget),
        );
        // The leaf oracle grafts the ∃ fabort side onto the shared chain
        // search: aborts must extend the longest commit history (or the LCP
        // when there were no commits).
        let mut leaf = |_chain: &Chain<T::Input>, longest: &[T::Input]| {
            aborts_feasible::<T, R::Value>(
                &abort_events,
                longest,
                &lcp,
                constrain_init_order,
                &vi,
                &extend,
            )
        };
        let outcome = engine.run(SearchSeed::from_history(&*self.adt, lcp.clone()), &mut leaf)?;
        Ok((
            outcome
                .solution
                .map(|(chain, abort_histories)| SlinWitness {
                    init_histories: finit.iter().map(|(i, h)| (*i, (*h).clone())).collect(),
                    commit_histories: chain,
                    abort_histories,
                }),
            outcome.stats,
        ))
    }
}

impl<T, R> ConsistencyModel<R::Value> for SlinChecker<T, R>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
{
    type Adt = T;
    type Witness = SlinReport<T::Input>;
    type Error = SlinError;

    fn adt(&self) -> &T {
        &self.adt
    }

    fn adt_shared(&self) -> Arc<T> {
        Arc::clone(&self.adt)
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn phase_bounds(&self) -> Option<(PhaseId, PhaseId)> {
        Some((self.m, self.n))
    }

    fn validate(&self, t: &Trace<ObjAction<T, R::Value>>) -> Result<(), SlinError> {
        self.prepare(t).map(|_| ())
    }

    fn check_monolithic(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        // [`SlinError`] carries no counters, so a failing check reports
        // zero stats (the historical `check_partitioned_with_report`
        // asymmetry).
        match self.check(t) {
            Ok(rep) => {
                let stats = rep.stats;
                (Ok(rep), stats)
            }
            Err(e) => (Err(e), SearchStats::default()),
        }
    }

    fn check_partition(
        &self,
        sub: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        match self.check_sequential_impl(sub) {
            Ok(rep) => {
                let stats = rep.stats;
                (Ok(rep), stats)
            }
            Err(e) => (Err(e), SearchStats::default()),
        }
    }

    fn check_remerge(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        match self.check_sequential_impl(t) {
            Ok(rep) => {
                let stats = rep.stats;
                (Ok(rep), stats)
            }
            Err(e) => (Err(e), SearchStats::default()),
        }
    }

    fn commit_chain(w: &SlinReport<T::Input>) -> &[(usize, Vec<T::Input>)] {
        w.witness.commit_histories.as_slice()
    }

    fn witness_from_chain(
        &self,
        chain: Chain<T::Input>,
        report: &PartitionReport,
    ) -> SlinReport<T::Input> {
        // Every enumerated interpretation contributes 1 to the absorbed
        // `interpretations` counter, so the partition sum is recoverable
        // from the merged stats. On switch-free traces (the only ones that
        // multi-partition) no init actions exist, so the merged witness
        // has empty init/abort interpretations.
        SlinReport {
            interpretations_checked: report.stats.interpretations,
            witness: SlinWitness {
                init_histories: Vec::new(),
                commit_histories: chain,
                abort_histories: Vec::new(),
            },
            stats: report.stats,
        }
    }

    fn witness_from_remerge(
        &self,
        mono: SlinReport<T::Input>,
        interpretations_pre: usize,
        report: &PartitionReport,
    ) -> SlinReport<T::Input> {
        SlinReport {
            interpretations_checked: interpretations_pre,
            witness: mono.witness,
            stats: report.stats,
        }
    }
}

impl<T, R> StreamModel<R::Value> for SlinChecker<T, R>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
{
    /// A switch action sends the stream into speculative mode: the rolling
    /// verdict defers to a lazy (cached) batch re-check.
    const QUIET_STATUS: MonitorStatus = MonitorStatus::Deferred;
    /// Speculative mode re-checks the retained trace, so the monitor must
    /// buffer it from the first switch on.
    const BUFFERS_ON_SWITCH: bool = true;

    fn status_of_error(e: &SlinError) -> MonitorStatus {
        match e {
            SlinError::NotSpeculativelyLinearizable { .. } => MonitorStatus::Violation,
            SlinError::IllFormed(_) | SlinError::ForeignAction { .. } => MonitorStatus::IllFormed,
            SlinError::BudgetExhausted { .. } | SlinError::TooManyInterpretations { .. } => {
                MonitorStatus::Unknown
            }
        }
    }

    fn stream_witness(&self, chain: Chain<T::Input>, stats: &SearchStats) -> SlinReport<T::Input> {
        SlinReport {
            interpretations_checked: stats.interpretations,
            witness: SlinWitness {
                init_histories: Vec::new(),
                commit_histories: chain,
                abort_histories: Vec::new(),
            },
            stats: *stats,
        }
    }

    fn stream_error(&self, failure: StreamFailure) -> SlinError {
        match failure {
            StreamFailure::Switch { .. } => {
                unreachable!("speculative streams buffer from the first switch on")
            }
            StreamFailure::Foreign { index } => SlinError::ForeignAction { index },
            StreamFailure::IllFormed(e) => SlinError::IllFormed(e),
            StreamFailure::NotSatisfied => SlinError::NotSpeculativelyLinearizable {
                interpretation: Vec::new(),
            },
            StreamFailure::BudgetExhausted { nodes } => SlinError::BudgetExhausted { nodes },
        }
    }
}

/// The validated trace summary and interpretation space shared by the
/// sequential and parallel enumeration paths.
struct Prepared<T: Adt, V> {
    t_len: usize,
    commits: Vec<Commit<T>>,
    inits: Vec<SwitchEvent<T::Input, V>>,
    aborts: Vec<SwitchEvent<T::Input, V>>,
    input_ms: Vec<PersistentMultiset<T::Input>>,
    ctx: CandidateContext<T::Input>,
    per_init: Vec<Vec<Vec<T::Input>>>,
    combos: usize,
}

/// The found abort interpretations: `(trace index, history)` pairs.
type AbortWitness<T> = Vec<(usize, Vec<<T as Adt>::Input>)>;

/// One interpretation's verdict (a witness, or `None` for "no speculative
/// linearization exists under this `finit`") plus its engine stats.
type InterpretationOutcome<T> = (Option<SlinWitness<<T as Adt>::Input>>, SearchStats);

/// Enumerator of `rinit` members extending a prefix (the ∃ `fabort` side).
type ExtendFn<'a, I, V> = dyn Fn(&V, &[I]) -> Vec<Vec<I>> + 'a;

/// Leaf check: every abort event needs an interpretation that extends
/// the longest commit history (Abort-Order), extends the init LCP
/// (Init-Order), and draws from the valid inputs at its index
/// (Definition 28).
///
/// Definition 31 demands a *strict* prefix; we require strictness only
/// for commit histories (where the chain construction enforces it) and
/// relax it to a plain prefix for abort histories: the paper's own ALM
/// specification automaton (Section 6, step A4) emits abort values equal
/// to the initialization prefix when nothing committed and no loose
/// pending inputs exist, and the composition proof only uses non-strict
/// prefix reasoning on abort histories.
fn aborts_feasible<T: Adt, V>(
    abort_events: &[(usize, T::Input, V)],
    longest_commit: &[T::Input],
    lcp: &[T::Input],
    constrain_init_order: bool,
    vi: &[PersistentMultiset<T::Input>],
    extend: &ExtendFn<'_, T::Input, V>,
) -> Option<AbortWitness<T>> {
    let mut chosen = Vec::with_capacity(abort_events.len());
    for (index, input, value) in abort_events {
        let cands = extend(value, longest_commit);
        let ok = cands.into_iter().find(|a| {
            (!constrain_init_order || seq::is_prefix(lcp, a))
                && PersistentMultiset::elems(a)
                    .union_max(&PersistentMultiset::elems(std::slice::from_ref(input)))
                    .is_subset_of(&vi[*index])
        });
        match ok {
            Some(a) => chosen.push((*index, a)),
            None => return None,
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initrel::{ConsensusInit, ExactInit};
    use slin_adt::{ConsInput, ConsOutput, Consensus, Universal, Value};
    use slin_trace::{Action, ClientId};

    type CV = Value;
    type CA = ObjAction<Consensus, CV>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    fn quorum_checker() -> SlinChecker<Consensus, ConsensusInit> {
        SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2))
    }

    fn backup_checker() -> SlinChecker<Consensus, ConsensusInit> {
        SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3))
    }

    #[test]
    fn empty_trace_is_slin() {
        let t: Trace<CA> = Trace::new();
        assert!(quorum_checker().check(&t).is_ok());
        assert!(backup_checker().check(&t).is_ok());
    }

    #[test]
    fn decide_then_switch_with_same_value_is_slin() {
        // Invariant I1 satisfied: c1 decides 1, c2 switches with 1.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
        ]);
        let report = quorum_checker().check(&t).unwrap();
        assert!(report.interpretations_checked >= 1);
        // The abort history starts with the decided value and extends the
        // commit history [p(1)].
        let (_, a) = &report.witness.abort_histories[0];
        assert_eq!(a.first(), Some(&p(1)));
    }

    #[test]
    fn decide_then_switch_with_other_value_violates() {
        // Invariant I1 violated: c1 decides 1 but c2 switches with 2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
        ]);
        assert!(matches!(
            quorum_checker().check(&t),
            Err(SlinError::NotSpeculativelyLinearizable { .. })
        ));
    }

    #[test]
    fn split_decisions_violate() {
        // Invariant I2 violated.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(2)),
        ]);
        assert!(quorum_checker().check(&t).is_err());
    }

    #[test]
    fn switch_with_unproposed_value_violates() {
        // Invariant I3 violated: 9 was never proposed, so no valid abort
        // history starting with p(9) exists.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(9)),
        ]);
        assert!(quorum_checker().check(&t).is_err());
    }

    #[test]
    fn diverging_switches_without_decision_are_slin() {
        // No decisions: clients may switch with different values (the
        // paper's "no client decides" case — LCP of abort histories empty).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::switch(c(1), ph(2), p(1), Value::new(2)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
        ]);
        assert!(quorum_checker().check(&t).is_ok());
    }

    #[test]
    fn backup_decides_unique_switch_value() {
        // Phase (2, 3): both clients arrive with switch value 5 and decide 5
        // (invariants I4, I5).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::switch(c(2), ph(2), p(2), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(5)),
            Action::respond(c(2), ph(2), p(2), d(5)),
        ]);
        let report = backup_checker().check(&t).unwrap();
        // The adversary can pick [p(5), x] for both init actions, so more
        // than one interpretation is enumerated.
        assert!(report.interpretations_checked > 1);
    }

    #[test]
    fn backup_must_not_decide_own_pending_over_init() {
        // Both init actions carry value 5; deciding 1 (a pending input value,
        // never a switch value) violates Init-Order: every commit history
        // must strictly extend [p(5)] and thus decide 5.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(1)),
        ]);
        assert!(backup_checker().check(&t).is_err());
    }

    #[test]
    fn backup_with_divergent_switch_values_may_decide_either() {
        // Two different switch values: LCP of init histories is empty, so
        // the phase may decide either (as Paxos might).
        for decided in [1u64, 2] {
            let t: Trace<CA> = Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
                Action::respond(c(1), ph(2), p(1), d(decided)),
                Action::respond(c(2), ph(2), p(2), d(decided)),
            ]);
            assert!(backup_checker().check(&t).is_ok(), "decided={decided}");
        }
    }

    #[test]
    fn backup_split_decision_violates() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
            Action::respond(c(1), ph(2), p(1), d(1)),
            Action::respond(c(2), ph(2), p(2), d(2)),
        ]);
        assert!(backup_checker().check(&t).is_err());
    }

    #[test]
    fn foreign_phase_label_rejected() {
        let t: Trace<CA> = Trace::from_actions(vec![Action::invoke(c(1), ph(3), p(1))]);
        assert_eq!(
            quorum_checker().check(&t),
            Err(SlinError::ForeignAction { index: 0 })
        );
    }

    #[test]
    fn exact_relation_universal_adt_roundtrip() {
        // Section 6 setting: universal ADT, switch values are histories.
        let u: Universal<u8> = Universal::new();
        let checker = SlinChecker::owned(u, ExactInit::new(), ph(1), ph(2));
        let t: Trace<ObjAction<Universal<u8>, Vec<u8>>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), 7u8),
            Action::respond(c(1), ph(1), 7u8, vec![7u8]),
            Action::invoke(c(2), ph(1), 9u8),
            Action::switch(c(2), ph(2), 9u8, vec![7u8, 9u8]),
        ]);
        let report = checker.check(&t).unwrap();
        assert_eq!(report.witness.abort_histories[0].1, vec![7, 9]);
    }

    #[test]
    fn exact_relation_rejects_abort_history_dropping_a_commit() {
        // c1's committed [7] must prefix every abort history; switching with
        // the history [9] alone contradicts Abort-Order.
        let u: Universal<u8> = Universal::new();
        let checker = SlinChecker::owned(u, ExactInit::new(), ph(1), ph(2));
        let t: Trace<ObjAction<Universal<u8>, Vec<u8>>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), 7u8),
            Action::respond(c(1), ph(1), 7u8, vec![7u8]),
            Action::invoke(c(2), ph(1), 9u8),
            Action::switch(c(2), ph(2), 9u8, vec![9u8]),
        ]);
        assert!(checker.check(&t).is_err());
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn parallel_and_sequential_verdicts_are_identical() {
        // Every test trace in this module, under forced multi-threading:
        // the parallel enumeration must reproduce the sequential verdict
        // byte for byte (witness, counts, stats, and error payloads).
        let traces: Vec<Trace<CA>> = vec![
            Trace::new(),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(1)),
            ]),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
            ]),
            Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(5)),
                Action::switch(c(2), ph(2), p(2), Value::new(5)),
                Action::respond(c(1), ph(2), p(1), d(5)),
                Action::respond(c(2), ph(2), p(2), d(5)),
            ]),
            Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
                Action::respond(c(1), ph(2), p(1), d(1)),
                Action::respond(c(2), ph(2), p(2), d(2)),
            ]),
        ];
        for t in &traces {
            for (m, n) in [(1, 2), (2, 3)] {
                let chk = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(m), ph(n))
                    .with_threads(4);
                let par = chk.check(t);
                let seq = chk.check_sequential(t);
                assert_eq!(par, seq, "phase ({m}, {n}) on {t:?}");
                assert_eq!(format!("{par:?}"), format!("{seq:?}"));
            }
        }
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn backup_parallel_enumeration_matches_interpretation_count() {
        // The backup phase enumerates > 1 interpretation (adversarial
        // candidate sets); parallel and sequential must count identically.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::switch(c(2), ph(2), p(2), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(5)),
            Action::respond(c(2), ph(2), p(2), d(5)),
        ]);
        let chk = backup_checker().with_threads(3);
        let par = chk.check(&t).unwrap();
        let seq = chk.check_sequential(&t).unwrap();
        assert!(par.interpretations_checked > 1);
        assert_eq!(par.interpretations_checked, seq.interpretations_checked);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(par.stats.interpretations, par.interpretations_checked);
        assert!(par.stats.nodes > 0);
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn budget_exhaustion_reports_node_count() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(1)),
        ]);
        let chk = quorum_checker().with_budget(1);
        match chk.check_sequential(&t) {
            Err(SlinError::BudgetExhausted { nodes }) => assert!(nodes > 0),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        // The parallel path reports the identical error.
        assert_eq!(
            chk.with_threads(2).check(&t),
            Err(SlinError::BudgetExhausted { nodes: 2 })
        );
    }

    #[test]
    fn theorem_2_slin_equals_lin_on_switch_free_traces() {
        // SLin(1, m) restricted to the object signature is Lin (Theorem 2):
        // on a switch-free trace the two checkers agree.
        use crate::lin::LinChecker;
        let lin = LinChecker::owned(Consensus);
        let traces: Vec<Trace<CA>> = vec![
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(2), ph(1), p(2), d(2)),
                Action::respond(c(1), ph(1), p(1), d(2)),
            ]),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::respond(c(2), ph(1), p(2), d(2)),
            ]),
        ];
        for t in &traces {
            assert_eq!(
                quorum_checker().check(t).is_ok(),
                lin.check(t).is_ok(),
                "{t:?}"
            );
        }
    }
}
