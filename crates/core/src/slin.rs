//! Speculative linearizability (paper Section 5).
//!
//! A trace `t` of a speculation phase `(m, n)` is *(m, n)-speculatively
//! linearizable* (Definition 19) iff it is `(m, n)`-well-formed and **for
//! every** interpretation `finit` of its init actions (switch actions
//! labelled `m`, interpreted through the common relation `rinit`) **there
//! exist** an interpretation `fabort` of its abort actions (switch actions
//! labelled `n`) and a *speculative linearization function* `g` such that
//! (Definitions 20–32):
//!
//! * **Explains** — `f_T(g(i))` is the output returned at every commit
//!   index `i`;
//! * **Validity** — commit and abort histories draw their inputs from the
//!   *valid inputs* `vi(m, t, finit, i)`: inputs invoked before `i` plus the
//!   inputs vouched for by init actions before `i` (`ivi`, Definition 25);
//! * **Commit-Order** — commit histories form a chain under strict prefix;
//! * **Init-Order** — the longest common prefix of all init histories is a
//!   strict prefix of every commit and abort history;
//! * **Abort-Order** — every commit history is a prefix of every abort
//!   history.
//!
//! [`SlinChecker`] decides the quantifier alternation by enumerating the
//! finite candidate interpretations provided by the [`InitRelation`]
//! (exact for the Section 6 singleton relation, bounded-adversarial for the
//! consensus mapping) and running, for each, the same
//! [`crate::engine::CheckerEngine`] chain search as the plain
//! linearizability checker — seeded with the longest common prefix of the
//! init histories and extended with abort feasibility at the leaves.
//!
//! Because the init interpretations are **independent** (the universal
//! quantifier of Definition 19 factors over them), [`SlinChecker::check`]
//! enumerates them **in parallel** across threads. Verdicts are
//! deterministic and identical to [`SlinChecker::check_sequential`]: on
//! failure, the *earliest* interpretation in enumeration order wins — the
//! same one the sequential loop would report.

use crate::engine::{Chain, CheckerEngine, EngineError, SearchBudget, SearchSeed, SearchStats};
use crate::initrel::{CandidateContext, InitRelation};
use crate::model::{self, ConsistencyModel};
use crate::ops::{self, Commit, SwitchEvent};
use crate::partition::{self, FallbackReason, PartitionReport};
use crate::stream::{MonitorStatus, StreamFailure, StreamModel};
use crate::ObjAction;
use slin_adt::{Adt, Partitioner};
use slin_trace::seq;
use slin_trace::wf::{self, WellFormednessError};
use slin_trace::{PersistentMultiset, PhaseId, Trace};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default node budget for the backtracking search (per interpretation).
pub const DEFAULT_BUDGET: usize = SearchBudget::DEFAULT_MAX_NODES;

/// Default cap on the number of init interpretations enumerated.
pub const DEFAULT_MAX_INTERPRETATIONS: usize = 16_384;

/// Why a trace failed the speculative linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlinError {
    /// The trace is not `(m, n)`-well-formed (Definition 35).
    IllFormed(WellFormednessError),
    /// An action's phase label lies outside `[m..n]`.
    ForeignAction {
        /// Index of the offending action.
        index: usize,
    },
    /// No speculative linearization function exists for the reported init
    /// interpretation: the trace is not speculatively linearizable.
    NotSpeculativelyLinearizable {
        /// Indices of the init actions, paired with the interpretation
        /// under which the existential fails (empty when `m = 1`).
        interpretation: Vec<(usize, Vec<String>)>,
    },
    /// The search exceeded its node budget before reaching a verdict.
    BudgetExhausted {
        /// Search nodes expanded (in the exhausting interpretation's
        /// search) when the budget tripped.
        nodes: usize,
    },
    /// More candidate interpretations than the configured cap.
    TooManyInterpretations {
        /// The number of interpretations that enumeration would require.
        required: usize,
    },
}

impl fmt::Display for SlinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlinError::IllFormed(e) => write!(f, "trace is not (m, n)-well-formed: {e}"),
            SlinError::ForeignAction { index } => {
                write!(f, "action at index {index} outside the phase signature")
            }
            SlinError::NotSpeculativelyLinearizable { interpretation } => write!(
                f,
                "no speculative linearization function exists (init interpretation at indices {:?})",
                interpretation.iter().map(|(i, _)| *i).collect::<Vec<_>>()
            ),
            SlinError::BudgetExhausted { nodes } => {
                write!(f, "search budget exhausted after {nodes} nodes")
            }
            SlinError::TooManyInterpretations { required } => {
                write!(f, "{required} init interpretations exceed the configured cap")
            }
        }
    }
}

impl Error for SlinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SlinError::IllFormed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WellFormednessError> for SlinError {
    fn from(e: WellFormednessError) -> Self {
        SlinError::IllFormed(e)
    }
}

impl From<EngineError> for SlinError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::BudgetExhausted { nodes } => SlinError::BudgetExhausted { nodes },
        }
    }
}

/// A witness for one init interpretation: the commit chain `g` and the abort
/// histories `fabort` found by the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlinWitness<I> {
    /// The interpretation of each init action: `(trace index, history)`.
    pub init_histories: Vec<(usize, Vec<I>)>,
    /// The commit histories in chain order: `(trace index, history)`.
    pub commit_histories: Vec<(usize, Vec<I>)>,
    /// The abort histories: `(trace index, history)`.
    pub abort_histories: Vec<(usize, Vec<I>)>,
}

/// The outcome of a successful check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlinReport<I> {
    /// How many init interpretations were enumerated (1 when `m = 1`).
    pub interpretations_checked: usize,
    /// The witness found under the first interpretation.
    pub witness: SlinWitness<I>,
    /// Aggregated engine counters over every enumerated interpretation
    /// (identical between the parallel and sequential paths).
    pub stats: SearchStats,
}

/// Decision procedure for `(m, n)`-speculative linearizability.
///
/// # Example
///
/// ```
/// use slin_adt::{Consensus, ConsInput, ConsOutput, Value};
/// use slin_core::initrel::ConsensusInit;
/// use slin_core::slin::SlinChecker;
/// use slin_trace::{Action, ClientId, PhaseId, Trace};
///
/// // A Quorum-style phase (1, 2) trace: c1 decides 1, c2 aborts with 1.
/// let (c1, c2) = (ClientId::new(1), ClientId::new(2));
/// let ph1 = PhaseId::new(1);
/// let t: Trace<Action<ConsInput, ConsOutput, Value>> = Trace::from_actions(vec![
///     Action::invoke(c1, ph1, ConsInput::propose(1)),
///     Action::invoke(c2, ph1, ConsInput::propose(2)),
///     Action::respond(c1, ph1, ConsInput::propose(1), ConsOutput::decide(1)),
///     Action::switch(c2, PhaseId::new(2), ConsInput::propose(2), Value::new(1)),
/// ]);
/// let checker = SlinChecker::owned(Consensus::new(), ConsensusInit::new(),
///                                  PhaseId::new(1), PhaseId::new(2));
/// assert!(checker.check(&t).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct SlinChecker<T, R> {
    adt: Arc<T>,
    rinit: R,
    m: PhaseId,
    n: PhaseId,
    budget: usize,
    max_interpretations: usize,
    /// Worker threads for interpretation enumeration (0 = one per core).
    threads: usize,
}

impl<T, R> SlinChecker<T, R>
where
    T: Adt,
    T::Input: Ord,
    R: InitRelation<T::Input>,
{
    /// Creates a checker owning `adt` for speculation phase `(m, n)` with
    /// the common relation `rinit`. The checker (and every
    /// `Session`/`Monitor` built from it) is `'static`.
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    pub fn owned(adt: T, rinit: R, m: PhaseId, n: PhaseId) -> Self {
        Self::shared(Arc::new(adt), rinit, m, n)
    }

    /// Creates a checker over an already-shared ADT handle.
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    pub fn shared(adt: Arc<T>, rinit: R, m: PhaseId, n: PhaseId) -> Self {
        assert!(m < n, "a speculation phase (m, n) requires m < n");
        SlinChecker {
            adt,
            rinit,
            m,
            n,
            budget: DEFAULT_BUDGET,
            max_interpretations: DEFAULT_MAX_INTERPRETATIONS,
            threads: 0,
        }
    }

    /// Creates a checker for a borrowed ADT by cloning it (every repo ADT
    /// is a zero-sized unit struct, so the clone is free).
    ///
    /// # Panics
    ///
    /// Panics unless `m < n`.
    #[deprecated(
        since = "0.1.0",
        note = "checkers own their model now: use `SlinChecker::owned(adt, rinit, m, n)` \
                (or `shared(Arc<T>, ..)` to share one allocation)"
    )]
    pub fn new(adt: &T, rinit: R, m: PhaseId, n: PhaseId) -> Self
    where
        T: Clone,
    {
        Self::owned(adt.clone(), rinit, m, n)
    }

    /// Overrides the per-interpretation search node budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the cap on enumerated init interpretations.
    pub fn with_max_interpretations(mut self, cap: usize) -> Self {
        self.max_interpretations = cap;
        self
    }

    /// Overrides the number of worker threads used by [`SlinChecker::check`]
    /// to enumerate init interpretations (0 = one per available core;
    /// 1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Checks `(m, n)`-speculative linearizability of the trace.
    ///
    /// # Errors
    ///
    /// See [`SlinError`]. The check is exact when the [`InitRelation`]
    /// candidate sets are exhaustive (e.g. [`crate::initrel::ExactInit`]);
    /// otherwise it validates the definition over the bounded adversarial
    /// candidate enumeration documented by the relation.
    pub fn check(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError>
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        self.check_with_stats_impl(t).0
    }

    /// [`SlinChecker::check`], also reporting [`SearchStats`] on **both**
    /// sides of the verdict (the `Session` facade's monolithic body). On
    /// `Ok` the stats equal [`SlinReport::stats`]; on a refutation they
    /// are the counters of the earliest failing interpretation's
    /// (exhaustive) search — the cost of proving no chain exists,
    /// deterministic and byte-identical between the sequential and
    /// parallel paths. Structural rejections (ill-formed traces,
    /// interpretation-space blowups) report zero stats: no search ran.
    pub(crate) fn check_with_stats_impl(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats)
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let prep = match self.prepare(t) {
            Ok(prep) => prep,
            Err(e) => return (Err(e), SearchStats::default()),
        };
        let threads = self.effective_threads().min(prep.combos);
        if threads <= 1 || prep.combos <= 1 {
            return self.run_sequential(&prep);
        }
        self.run_parallel(&prep, threads)
    }

    /// Single-threaded form of [`SlinChecker::check`]; byte-identical
    /// verdicts (the parallel path resolves races by enumeration order).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade with `.threads(1)` — see `slin_core::session`"
    )]
    pub fn check_sequential(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError> {
        self.check_sequential_impl(t)
    }

    /// The single-threaded enumeration loop (the partitioned path's
    /// per-partition unit of work, and the merge-bail re-derivation).
    fn check_sequential_impl(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError> {
        self.check_sequential_stats(t).0
    }

    /// [`SlinChecker::check_sequential_impl`] with the refutation-side
    /// stats of `check_with_stats_impl`.
    fn check_sequential_stats(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        match self.prepare(t) {
            Ok(prep) => self.run_sequential(&prep),
            Err(e) => (Err(e), SearchStats::default()),
        }
    }

    /// Boolean form of [`SlinChecker::check`].
    pub fn is_speculatively_linearizable(&self, t: &Trace<ObjAction<T, R::Value>>) -> bool
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        self.check(t).is_ok()
    }

    /// P-compositional form of [`SlinChecker::check`]: splits the trace
    /// into independent sub-histories along `partitioner`, checks them
    /// across scoped worker threads, and merges the results.
    ///
    /// Any trace containing a **switch action** engages the identity
    /// fallback (one monolithic check): switch values are interpreted
    /// through the common relation `rinit`, whose candidate histories may
    /// couple independence classes. On switch-free traces — where the
    /// speculative search coincides with the plain one (Theorem 2) —
    /// verdicts and witnesses are byte-identical to [`SlinChecker::check`];
    /// see [`crate::partition`] for the argument. `interpretations_checked`
    /// and [`SlinReport::stats`] measure *work*, which partitioning reduces
    /// by design, so they differ from the monolithic path.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: `Checker::builder(model).partitioner(p).build()` \
                — see `slin_core::session`"
    )]
    pub fn check_partitioned<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<SlinReport<T::Input>, SlinError>
    where
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        model::check_partitioned(self, partitioner, t).verdict
    }

    /// Like [`SlinChecker::check_partitioned`], also reporting the
    /// [`PartitionReport`] (partition count, fallback engagement, merged
    /// [`SearchStats`]). When the single-partition fallback path *fails*,
    /// the report carries the refutation-side counters of the monolithic
    /// check (the earliest failing interpretation's own search).
    #[deprecated(
        since = "0.1.0",
        note = "use the `Session` facade: the returned `Verdict` carries the \
                `PartitionReport` — see `slin_core::session`"
    )]
    pub fn check_partitioned_with_report<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, PartitionReport)
    where
        P: Partitioner<T>,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let sv = model::check_partitioned(self, partitioner, t);
        (sv.verdict, sv.report)
    }

    /// Like [`SlinChecker::check_partitioned_with_report`], but over an
    /// already-computed [`partition::SplitOutcome`] maintained incrementally
    /// by the caller.
    #[deprecated(
        since = "0.1.0",
        note = "use the generic `slin_core::model::check_split` — one code path \
                for every `ConsistencyModel`"
    )]
    pub fn check_split_with_report<K>(
        &self,
        split: &partition::SplitOutcome<T, R::Value, K>,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, PartitionReport)
    where
        K: Sync,
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        let sv = model::check_split(self, split, t);
        (sv.verdict, sv.report)
    }

    /// Validates the trace against the phase signature and well-formedness,
    /// and enumerates the candidate interpretation space.
    fn prepare(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Result<Prepared<T, R::Value>, SlinError> {
        // Signature membership: invocations and responses labelled in
        // [m..n-1], switch actions in [m..n].
        let sig = slin_trace::PhaseSignature::new(self.m, self.n);
        use slin_trace::prop::Signature as _;
        for (index, a) in t.iter().enumerate() {
            if !sig.contains(a) {
                return Err(SlinError::ForeignAction { index });
            }
        }
        wf::check_phase_well_formed(t, self.m, self.n)?;

        let commits = ops::commits::<T, R::Value>(t);
        let inits = ops::switches::<T, R::Value>(t, self.m);
        let aborts = ops::switches::<T, R::Value>(t, self.n);
        let input_ms = ops::input_multisets::<T, R::Value>(t);
        let ctx = CandidateContext::new(t.iter().map(|a| a.input().clone()).collect());

        // Enumerate candidate interpretations of the init actions.
        let per_init: Vec<Vec<Vec<T::Input>>> = inits
            .iter()
            .map(|s| self.rinit.candidates(&s.value, &ctx))
            .collect();
        let combos: usize = per_init.iter().map(|c| c.len().max(1)).product();
        if combos > self.max_interpretations {
            return Err(SlinError::TooManyInterpretations { required: combos });
        }
        Ok(Prepared {
            t_len: t.len(),
            commits,
            inits,
            aborts,
            input_ms,
            ctx,
            per_init,
            combos,
        })
    }

    /// The `idx`-th interpretation in enumeration order: `idx` is read as a
    /// mixed-radix numeral over the per-init candidate counts, least
    /// significant digit first (the order the historical sequential counter
    /// produced).
    fn finit_at<'p>(
        &self,
        prep: &'p Prepared<T, R::Value>,
        idx: usize,
    ) -> Vec<(usize, &'p Vec<T::Input>)> {
        let mut rem = idx;
        prep.inits
            .iter()
            .zip(prep.per_init.iter())
            .filter_map(|(s, cands)| {
                let radix = cands.len().max(1);
                let digit = rem % radix;
                rem /= radix;
                cands.get(digit).map(|h| (s.index, h))
            })
            .collect()
    }

    fn fail_error(finit: &[(usize, &Vec<T::Input>)]) -> SlinError {
        SlinError::NotSpeculativelyLinearizable {
            interpretation: finit
                .iter()
                .map(|(i, h)| (*i, h.iter().map(|x| format!("{x:?}")).collect()))
                .collect(),
        }
    }

    /// The historical enumeration loop, one interpretation at a time.
    ///
    /// The second tuple element is the stats surface of
    /// `check_with_stats_impl`: on `Ok` it equals the report's
    /// absorbed counters; on a refutation it is the **failing
    /// interpretation's own** search counters (not the absorbed prefix),
    /// so the sequential and parallel paths report identically.
    fn run_sequential(
        &self,
        prep: &Prepared<T, R::Value>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        let mut first_witness: Option<SlinWitness<T::Input>> = None;
        let mut stats = SearchStats::default();
        for idx in 0..prep.combos {
            let finit = self.finit_at(prep, idx);
            match self.check_one_interpretation(prep, &finit) {
                Ok((Some(w), s)) => {
                    stats.absorb(&s);
                    if first_witness.is_none() {
                        first_witness = Some(w);
                    }
                }
                Ok((None, s)) => return (Err(Self::fail_error(&finit)), s),
                Err(e) => return (Err(e), SearchStats::default()),
            }
        }
        let report = SlinReport {
            interpretations_checked: prep.combos,
            witness: first_witness.expect("combos >= 1: at least one interpretation checked"),
            stats,
        };
        (Ok(report), stats)
    }

    /// Fans the interpretation indices out over `threads` scoped workers
    /// (worker `w` takes indices `w, w + threads, …`). A shared watermark
    /// of the earliest abnormal index lets workers stop early; the final
    /// verdict is resolved by minimum index, which makes the result
    /// byte-identical to [`SlinChecker::run_sequential`].
    fn run_parallel(
        &self,
        prep: &Prepared<T, R::Value>,
        threads: usize,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats)
    where
        T: Send + Sync,
        T::Input: Send + Sync,
        T::Output: Sync,
        R: Sync,
        R::Value: Sync,
    {
        struct WorkerOutcome<I> {
            witness0: Option<SlinWitness<I>>,
            abnormal: Option<(usize, SlinError, SearchStats)>,
            stats: SearchStats,
        }

        let best_abnormal = AtomicUsize::new(usize::MAX);
        let worker_outcomes: Vec<WorkerOutcome<T::Input>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let best_abnormal = &best_abnormal;
                    scope.spawn(move || {
                        let mut out = WorkerOutcome {
                            witness0: None,
                            abnormal: None,
                            stats: SearchStats::default(),
                        };
                        let mut idx = worker;
                        while idx < prep.combos {
                            // Indices beyond the earliest known abnormal one
                            // cannot influence the verdict.
                            if idx > best_abnormal.load(Ordering::Relaxed) {
                                break;
                            }
                            let finit = self.finit_at(prep, idx);
                            match self.check_one_interpretation(prep, &finit) {
                                Ok((Some(w), s)) => {
                                    out.stats.absorb(&s);
                                    if idx == 0 {
                                        out.witness0 = Some(w);
                                    }
                                }
                                Ok((None, s)) => {
                                    best_abnormal.fetch_min(idx, Ordering::Relaxed);
                                    out.abnormal = Some((idx, Self::fail_error(&finit), s));
                                    break;
                                }
                                Err(e) => {
                                    best_abnormal.fetch_min(idx, Ordering::Relaxed);
                                    out.abnormal = Some((idx, e, SearchStats::default()));
                                    break;
                                }
                            }
                            idx += threads;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("interpretation worker panicked"))
                .collect()
        });

        if let Some((_, error, s)) = worker_outcomes
            .iter()
            .filter_map(|w| w.abnormal.clone())
            .min_by_key(|(idx, _, _)| *idx)
        {
            // The earliest abnormal index is the verdict; its own search
            // counters are the deterministic refutation cost (absorbing
            // the racing workers' partial successes would not reproduce).
            return (Err(error), s);
        }
        let mut stats = SearchStats::default();
        let mut witness = None;
        for w in worker_outcomes {
            stats.absorb(&w.stats);
            if w.witness0.is_some() {
                witness = w.witness0;
            }
        }
        let report = SlinReport {
            interpretations_checked: prep.combos,
            witness: witness.expect("worker 0 checked interpretation 0"),
            stats,
        };
        (Ok(report), stats)
    }

    /// The *valid inputs* `vi(m, t, finit, i)` (Definition 26) per trace
    /// index, shared by the monolithic and keyed paths.
    fn valid_inputs(
        &self,
        prep: &Prepared<T, R::Value>,
        finit: &[(usize, &Vec<T::Input>)],
    ) -> Vec<PersistentMultiset<T::Input>> {
        // ivi (Definition 25): cumulative, per trace index, the inputs
        // vouched for by init actions strictly before i. The elements of the
        // interpretation histories are ∪-combined (they describe prefixes of
        // one linearization of the previous phase), while each init action's
        // *pending input* is a distinct invocation transferred into this
        // phase and is therefore ⊎-summed — this is what makes the paper's
        // own Backup construction (h ::: pending inputs, Section 2.4) valid
        // when a pending value collides with an init-history element.
        let mut ivi: Vec<PersistentMultiset<T::Input>> = Vec::with_capacity(prep.t_len + 1);
        let mut hist_elems: PersistentMultiset<T::Input> = PersistentMultiset::new();
        let mut pending_sum: PersistentMultiset<T::Input> = PersistentMultiset::new();
        ivi.push(PersistentMultiset::new());
        for i in 0..prep.t_len {
            if let Some((_, h)) = finit.iter().find(|(j, _)| *j == i) {
                let init_input = prep
                    .inits
                    .iter()
                    .find(|s| s.index == i)
                    .map(|s| s.input.clone())
                    .expect("finit indices come from inits");
                hist_elems = hist_elems.union_max(&PersistentMultiset::elems(h));
                pending_sum.insert(init_input);
            }
            ivi.push(hist_elems.sum(&pending_sum));
        }
        // vi (Definition 26): ivi(i) ⊎ elems(inputs(t, i)).
        ivi.iter()
            .zip(prep.input_ms.iter())
            .map(|(a, b)| a.sum(b))
            .collect()
    }

    /// Decides the existential part of Definition 19 for one fixed `finit`.
    fn check_one_interpretation(
        &self,
        prep: &Prepared<T, R::Value>,
        finit: &[(usize, &Vec<T::Input>)],
    ) -> Result<InterpretationOutcome<T>, SlinError> {
        let vi = self.valid_inputs(prep, finit);

        // The longest common prefix of the init histories seeds the chain.
        let lcp: Vec<T::Input> =
            seq::longest_common_prefix(finit.iter().map(|(_, h)| h.as_slice()));
        let constrain_init_order = !finit.is_empty();

        // Abort interpretations are found at the leaves, once the longest
        // commit history is known: the relation enumerates members of
        // rinit(v) extending it.
        let abort_events: Vec<(usize, T::Input, R::Value)> = prep
            .aborts
            .iter()
            .map(|s| (s.index, s.input.clone(), s.value.clone()))
            .collect();
        let extend =
            |value: &R::Value, prefix: &[T::Input]| self.rinit.extensions(value, prefix, &prep.ctx);

        let pool = vi.last().cloned().unwrap_or_else(PersistentMultiset::new);
        let engine = CheckerEngine::new(
            &*self.adt,
            &prep.commits,
            &vi,
            pool,
            SearchBudget::new(self.budget),
        );
        // The leaf oracle grafts the ∃ fabort side onto the shared chain
        // search: aborts must extend the longest commit history (or the LCP
        // when there were no commits).
        let mut leaf = |_chain: &Chain<T::Input>, longest: &[T::Input]| {
            aborts_feasible::<T, R::Value>(
                &abort_events,
                longest,
                &lcp,
                constrain_init_order,
                &vi,
                &extend,
            )
        };
        let outcome = engine.run(SearchSeed::from_history(&*self.adt, lcp.clone()), &mut leaf)?;
        Ok((
            outcome
                .solution
                .map(|(chain, abort_histories)| SlinWitness {
                    init_histories: finit.iter().map(|(i, h)| (*i, (*h).clone())).collect(),
                    commit_histories: chain,
                    abort_histories,
                }),
            outcome.stats,
        ))
    }
}

/// Per global abort: `(trace index, its pending input when this class
/// owns it, the class projection of its interpretation)`.
type KeyedAborts<T> = Vec<(usize, Option<<T as Adt>::Input>, Vec<<T as Adt>::Input>)>;

/// The keyed phase-trace machinery: one class's unit of work.
struct KeyedClass<T: Adt> {
    /// The class's commits, keeping their **original** trace indices (the
    /// validity bounds below are indexed by them).
    commits: Vec<Commit<T>>,
    /// The class projection of the global valid-input bounds `vi`.
    vi: Vec<PersistentMultiset<T::Input>>,
    /// The class projection of the init LCP — the class search's seed.
    lcp: Vec<T::Input>,
    /// See [`KeyedAborts`].
    aborts: KeyedAborts<T>,
}

impl<T, R> SlinChecker<T, R>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
{
    /// The keyed phase-trace check behind
    /// [`ConsistencyModel::check_keyed`]: classifies commits, pending
    /// inputs **and switch-value interpretations** per independence class,
    /// runs one chain search per class seeded with the class projection of
    /// the init LCP, and merges the per-class witnesses back into the
    /// monolithic first witness.
    ///
    /// Sound when a switch-independence certificate (`slin-cert/v2`)
    /// covers `(adt, partitioner, rinit)` — the session layer enforces
    /// that gate. The residual per-trace conditions the certificate cannot
    /// see downgrade to one monolithic check carrying the matching
    /// [`FallbackReason`]:
    ///
    /// * a relation without [`InitRelation::project_keyed`], or with more
    ///   than one candidate interpretation per switch —
    ///   [`FallbackReason::SwitchUncertified`];
    /// * an input (or interpretation element) the partitioner declines —
    ///   [`FallbackReason::UnclassifiableInput`];
    /// * a forced common prefix that does not decompose per class —
    ///   [`FallbackReason::CrossBoundCoupled`].
    ///
    /// Verdicts and [`SlinWitness`]es are byte-identical to the monolithic
    /// path: a failing class refutes the monolithic search (its leaf
    /// conditions are projections of the global ones), and a merged chain
    /// is re-checked against the global abort leaf, re-deriving
    /// monolithically (`remerged`) when the replay cannot predict the
    /// monolithic witness.
    fn check_keyed_impl<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> model::SplitVerdict<SlinReport<T::Input>, SlinError>
    where
        P: Partitioner<T>,
    {
        // Switch-free traces partition without any of the keyed machinery.
        if !t.iter().any(|a| a.is_switch()) {
            return model::check_partitioned(self, partitioner, t);
        }
        // Full validation first: rejection errors and indices must be the
        // monolithic ones.
        let prep = match self.prepare(t) {
            Ok(prep) => prep,
            Err(e) => {
                return model::SplitVerdict {
                    verdict: Err(e),
                    report: PartitionReport {
                        partitions: 1,
                        fallback: None,
                        remerged: false,
                        stats: SearchStats::default(),
                    },
                    interpretations_pre: 0,
                }
            }
        };
        let monolithic = |reason: FallbackReason| {
            let (verdict, stats) = self.check_monolithic(t);
            model::SplitVerdict {
                verdict,
                report: PartitionReport {
                    partitions: 1,
                    fallback: Some(reason),
                    remerged: false,
                    stats,
                },
                interpretations_pre: stats.interpretations,
            }
        };
        // The keyed path instantiates exactly one interpretation: a
        // relation with adversarial candidate sets has no per-class
        // decomposition certificate to lean on.
        if prep.combos != 1 {
            return monolithic(FallbackReason::SwitchUncertified);
        }
        // Every abort value must interpret uniquely too, and every switch
        // value must project per class (the keyed init relation).
        let mut abort_hists: Vec<Vec<T::Input>> = Vec::with_capacity(prep.aborts.len());
        for s in &prep.aborts {
            let mut cands = self.rinit.candidates(&s.value, &prep.ctx);
            if cands.len() != 1 {
                return monolithic(FallbackReason::SwitchUncertified);
            }
            abort_hists.push(cands.pop().expect("length checked"));
        }
        if prep
            .inits
            .iter()
            .chain(prep.aborts.iter())
            .any(|s| self.rinit.project_keyed(&s.value, &|_| true).is_none())
        {
            return monolithic(FallbackReason::SwitchUncertified);
        }
        // Classify every pending input and every interpretation element;
        // any unclassifiable one collapses the split.
        let mut class_keys: std::collections::BTreeSet<P::Key> = std::collections::BTreeSet::new();
        let all_classified = t
            .iter()
            .map(|a| a.input())
            .chain(
                prep.per_init
                    .iter()
                    .flat_map(|cands| cands.first().into_iter().flatten()),
            )
            .chain(abort_hists.iter().flatten())
            .all(|i| match partitioner.key_of(i) {
                Some(k) => {
                    class_keys.insert(k);
                    true
                }
                None => false,
            });
        if !all_classified {
            return monolithic(FallbackReason::UnclassifiableInput);
        }
        let keys: Vec<P::Key> = class_keys.into_iter().collect();

        // The single interpretation and its global bounds.
        let finit = self.finit_at(&prep, 0);
        let vi = self.valid_inputs(&prep, &finit);
        let lcp: Vec<T::Input> =
            seq::longest_common_prefix(finit.iter().map(|(_, h)| h.as_slice()));
        let constrain_init_order = !finit.is_empty();

        let key_of = |i: &T::Input| {
            partitioner
                .key_of(i)
                .expect("every occurring input classified above")
        };
        let proj = |k: &P::Key, h: &[T::Input]| -> Vec<T::Input> {
            h.iter().filter(|i| key_of(i) == *k).cloned().collect()
        };
        let proj_ms = |k: &P::Key, ms: &PersistentMultiset<T::Input>| {
            let mut out: PersistentMultiset<T::Input> = PersistentMultiset::new();
            for (i, n) in ms.iter() {
                if key_of(i) == *k {
                    out.add(i.clone(), n);
                }
            }
            out
        };

        // Per-trace discharge of the decomposition the certificate vouches
        // for in general: the forced common prefix must project per class
        // (obligation (b) on this trace's values), and the relation's own
        // projection must agree with history projection (obligation (a)).
        for k in &keys {
            let per_hist: Vec<Vec<T::Input>> = finit.iter().map(|(_, h)| proj(k, h)).collect();
            let lcp_of_proj = seq::longest_common_prefix(per_hist.iter().map(|h| h.as_slice()));
            if proj(k, &lcp) != lcp_of_proj {
                return monolithic(FallbackReason::CrossBoundCoupled);
            }
            let switch_hists = prep
                .inits
                .iter()
                .zip(prep.per_init.iter().map(|cands| cands.first()))
                .filter_map(|(s, h)| h.map(|h| (&s.value, h)))
                .chain(
                    prep.aborts
                        .iter()
                        .zip(abort_hists.iter())
                        .map(|(s, h)| (&s.value, h)),
                );
            for (value, hist) in switch_hists {
                let keep = |i: &T::Input| key_of(i) == *k;
                let Some(projected_value) = self.rinit.project_keyed(value, &keep) else {
                    return monolithic(FallbackReason::SwitchUncertified);
                };
                if self.rinit.candidates(&projected_value, &prep.ctx) != vec![proj(k, hist)] {
                    return monolithic(FallbackReason::CrossBoundCoupled);
                }
            }
        }

        let work: Vec<KeyedClass<T>> = keys
            .iter()
            .map(|k| KeyedClass {
                commits: prep
                    .commits
                    .iter()
                    .filter(|c| key_of(&c.input) == *k)
                    .cloned()
                    .collect(),
                vi: vi.iter().map(|ms| proj_ms(k, ms)).collect(),
                lcp: proj(k, &lcp),
                aborts: prep
                    .aborts
                    .iter()
                    .zip(abort_hists.iter())
                    .map(|(s, h)| {
                        let own = (key_of(&s.input) == *k).then(|| s.input.clone());
                        (s.index, own, proj(k, h))
                    })
                    .collect(),
            })
            .collect();

        // One chain search per class, fanned out like the switch-free
        // partitioned path. The per-class abort leaf asks each global
        // abort's class projection to extend the class's longest commit
        // history and LCP and to draw from the class's valid inputs — the
        // projections of the global leaf conditions, so they hold whenever
        // the monolithic leaf does.
        let threads = self.effective_threads().min(work.len());
        type ClassOutcome<I> = (Result<Option<Chain<I>>, EngineError>, SearchStats);
        let results: Vec<ClassOutcome<T::Input>> = partition::fan_out(work.len(), threads, &|ci| {
            let w = &work[ci];
            let pool = w.vi.last().cloned().unwrap_or_default();
            let engine = CheckerEngine::new(
                &*self.adt,
                &w.commits,
                &w.vi,
                pool,
                SearchBudget::new(self.budget),
            );
            let mut leaf = |_chain: &Chain<T::Input>, longest: &[T::Input]| {
                w.aborts
                    .iter()
                    .all(|(index, own, cand)| {
                        seq::is_prefix(longest, cand)
                            && (!constrain_init_order || seq::is_prefix(&w.lcp, cand))
                            && {
                                let mut ms = PersistentMultiset::elems(cand);
                                if let Some(i) = own {
                                    ms = ms.union_max(&PersistentMultiset::elems(
                                        std::slice::from_ref(i),
                                    ));
                                }
                                ms.is_subset_of(&w.vi[*index])
                            }
                    })
                    .then_some(())
            };
            match engine.run(
                SearchSeed::from_history(&*self.adt, w.lcp.clone()),
                &mut leaf,
            ) {
                Ok(out) => (Ok(out.solution.map(|(chain, ())| chain)), out.stats),
                Err(e) => (Err(e), SearchStats::default()),
            }
        });

        let mut stats = SearchStats::default();
        let mut chains: Vec<Chain<T::Input>> = Vec::with_capacity(results.len());
        let mut refuted = false;
        let mut exhausted = false;
        for (outcome, s) in results {
            stats.absorb(&s);
            match outcome {
                Ok(Some(chain)) => chains.push(chain),
                Ok(None) => refuted = true,
                Err(_) => exhausted = true,
            }
        }
        if refuted {
            // A class with no chain refutes the monolithic search too, and
            // with one interpretation the failing `finit` is the global one
            // — the error is byte-identical to the monolithic path's.
            return model::SplitVerdict {
                verdict: Err(Self::fail_error(&finit)),
                report: PartitionReport {
                    partitions: keys.len(),
                    fallback: None,
                    remerged: false,
                    stats,
                },
                interpretations_pre: stats.interpretations,
            };
        }
        let rederive = |mut stats: SearchStats| {
            let interpretations_pre = stats.interpretations;
            let (verdict, mono_stats) = self.check_monolithic(t);
            stats.absorb(&mono_stats);
            let report = PartitionReport {
                partitions: keys.len(),
                fallback: None,
                remerged: true,
                stats,
            };
            model::SplitVerdict {
                verdict: verdict.map(|mono| SlinReport {
                    interpretations_checked: interpretations_pre,
                    witness: mono.witness,
                    stats: report.stats,
                }),
                report,
                interpretations_pre,
            }
        };
        if exhausted {
            // A class ran out of budget: the keyed verdict is unknown, so
            // decide monolithically (absorbing the finished classes).
            return rederive(stats);
        }

        // Merge the per-class chains back into the monolithic first
        // witness: strip each class's seed prefix, replay engine order
        // against the **global** bounds with the global LCP pre-consumed,
        // then re-prepend the LCP.
        let idmap: Vec<usize> = (0..prep.t_len).collect();
        let parts: Vec<_> = chains
            .iter()
            .zip(work.iter())
            .map(|(chain, w)| {
                let stripped: Vec<(usize, Vec<T::Input>)> = chain
                    .iter()
                    .map(|(i, h)| (*i, h[w.lcp.len()..].to_vec()))
                    .collect();
                (
                    partition::witness_steps(&stripped, &idmap),
                    w.vi.last().cloned().unwrap_or_default(),
                )
            })
            .collect();
        let Some(merged) =
            partition::merge_partition_chains(&vi, parts, PersistentMultiset::elems(&lcp))
        else {
            return rederive(stats);
        };
        let commit_histories: Vec<(usize, Vec<T::Input>)> = merged
            .into_iter()
            .map(|(i, h)| {
                let mut full = lcp.clone();
                full.extend(h);
                (i, full)
            })
            .collect();
        let longest: Vec<T::Input> = commit_histories
            .last()
            .map(|(_, h)| h.clone())
            .unwrap_or_else(|| lcp.clone());
        // Re-discharge the abort leaf globally on the merged chain; the
        // off chance it fails (coupling the per-class leaves cannot see)
        // re-derives monolithically, keeping the witness byte-identical.
        let abort_events: Vec<(usize, T::Input, R::Value)> = prep
            .aborts
            .iter()
            .map(|s| (s.index, s.input.clone(), s.value.clone()))
            .collect();
        let extend =
            |value: &R::Value, prefix: &[T::Input]| self.rinit.extensions(value, prefix, &prep.ctx);
        let Some(abort_histories) = aborts_feasible::<T, R::Value>(
            &abort_events,
            &longest,
            &lcp,
            constrain_init_order,
            &vi,
            &extend,
        ) else {
            return rederive(stats);
        };
        let report = PartitionReport {
            partitions: keys.len(),
            fallback: None,
            remerged: false,
            stats,
        };
        model::SplitVerdict {
            verdict: Ok(SlinReport {
                interpretations_checked: stats.interpretations,
                witness: SlinWitness {
                    init_histories: finit.iter().map(|(i, h)| (*i, (*h).clone())).collect(),
                    commit_histories,
                    abort_histories,
                },
                stats,
            }),
            report,
            interpretations_pre: stats.interpretations,
        }
    }
}

impl<T, R> ConsistencyModel<R::Value> for SlinChecker<T, R>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
{
    type Adt = T;
    type Witness = SlinReport<T::Input>;
    type Error = SlinError;

    fn adt(&self) -> &T {
        &self.adt
    }

    fn adt_shared(&self) -> Arc<T> {
        Arc::clone(&self.adt)
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn phase_bounds(&self) -> Option<(PhaseId, PhaseId)> {
        Some((self.m, self.n))
    }

    fn validate(&self, t: &Trace<ObjAction<T, R::Value>>) -> Result<(), SlinError> {
        self.prepare(t).map(|_| ())
    }

    fn check_monolithic(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        // [`SlinError`] carries no counters, but the refutation cost is
        // reported alongside: see `check_with_stats_impl`.
        self.check_with_stats_impl(t)
    }

    fn check_partition(
        &self,
        sub: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        self.check_sequential_stats(sub)
    }

    fn check_remerge(
        &self,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> (Result<SlinReport<T::Input>, SlinError>, SearchStats) {
        self.check_sequential_stats(t)
    }

    fn commit_chain(w: &SlinReport<T::Input>) -> &[(usize, Vec<T::Input>)] {
        w.witness.commit_histories.as_slice()
    }

    fn witness_from_chain(
        &self,
        chain: Chain<T::Input>,
        report: &PartitionReport,
    ) -> SlinReport<T::Input> {
        // Every enumerated interpretation contributes 1 to the absorbed
        // `interpretations` counter, so the partition sum is recoverable
        // from the merged stats. On switch-free traces (the only ones that
        // multi-partition) no init actions exist, so the merged witness
        // has empty init/abort interpretations.
        SlinReport {
            interpretations_checked: report.stats.interpretations,
            witness: SlinWitness {
                init_histories: Vec::new(),
                commit_histories: chain,
                abort_histories: Vec::new(),
            },
            stats: report.stats,
        }
    }

    fn witness_from_remerge(
        &self,
        mono: SlinReport<T::Input>,
        interpretations_pre: usize,
        report: &PartitionReport,
    ) -> SlinReport<T::Input> {
        SlinReport {
            interpretations_checked: interpretations_pre,
            witness: mono.witness,
            stats: report.stats,
        }
    }

    fn init_relation_name(&self) -> Option<&'static str> {
        Some(slin_analysis::short_type_name::<R>())
    }

    fn check_keyed<P>(
        &self,
        partitioner: &P,
        t: &Trace<ObjAction<T, R::Value>>,
    ) -> Option<model::SplitVerdict<SlinReport<T::Input>, SlinError>>
    where
        Self: Sync,
        T: Sync,
        T::Input: Ord + Send + Sync,
        T::Output: Sync,
        SlinReport<T::Input>: Send,
        SlinError: Send,
        R::Value: Clone + Sync,
        P: Partitioner<T>,
    {
        Some(self.check_keyed_impl(partitioner, t))
    }
}

impl<T, R> StreamModel<R::Value> for SlinChecker<T, R>
where
    T: Adt + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    R: InitRelation<T::Input> + Sync,
    R::Value: Clone + PartialEq + Sync,
{
    /// A switch action sends the stream into speculative mode: the rolling
    /// verdict defers to a lazy (cached) batch re-check.
    const QUIET_STATUS: MonitorStatus = MonitorStatus::Deferred;
    /// Speculative mode re-checks the retained trace, so the monitor must
    /// buffer it from the first switch on.
    const BUFFERS_ON_SWITCH: bool = true;

    fn status_of_error(e: &SlinError) -> MonitorStatus {
        match e {
            SlinError::NotSpeculativelyLinearizable { .. } => MonitorStatus::Violation,
            SlinError::IllFormed(_) | SlinError::ForeignAction { .. } => MonitorStatus::IllFormed,
            SlinError::BudgetExhausted { .. } | SlinError::TooManyInterpretations { .. } => {
                MonitorStatus::Unknown
            }
        }
    }

    fn stream_witness(&self, chain: Chain<T::Input>, stats: &SearchStats) -> SlinReport<T::Input> {
        SlinReport {
            interpretations_checked: stats.interpretations,
            witness: SlinWitness {
                init_histories: Vec::new(),
                commit_histories: chain,
                abort_histories: Vec::new(),
            },
            stats: *stats,
        }
    }

    fn stream_error(&self, failure: StreamFailure) -> SlinError {
        match failure {
            StreamFailure::Switch { .. } => {
                unreachable!("speculative streams buffer from the first switch on")
            }
            StreamFailure::Foreign { index } => SlinError::ForeignAction { index },
            StreamFailure::IllFormed(e) => SlinError::IllFormed(e),
            StreamFailure::NotSatisfied => SlinError::NotSpeculativelyLinearizable {
                interpretation: Vec::new(),
            },
            StreamFailure::BudgetExhausted { nodes } => SlinError::BudgetExhausted { nodes },
        }
    }
}

/// The validated trace summary and interpretation space shared by the
/// sequential and parallel enumeration paths.
struct Prepared<T: Adt, V> {
    t_len: usize,
    commits: Vec<Commit<T>>,
    inits: Vec<SwitchEvent<T::Input, V>>,
    aborts: Vec<SwitchEvent<T::Input, V>>,
    input_ms: Vec<PersistentMultiset<T::Input>>,
    ctx: CandidateContext<T::Input>,
    per_init: Vec<Vec<Vec<T::Input>>>,
    combos: usize,
}

/// The found abort interpretations: `(trace index, history)` pairs.
type AbortWitness<T> = Vec<(usize, Vec<<T as Adt>::Input>)>;

/// One interpretation's verdict (a witness, or `None` for "no speculative
/// linearization exists under this `finit`") plus its engine stats.
type InterpretationOutcome<T> = (Option<SlinWitness<<T as Adt>::Input>>, SearchStats);

/// Enumerator of `rinit` members extending a prefix (the ∃ `fabort` side).
type ExtendFn<'a, I, V> = dyn Fn(&V, &[I]) -> Vec<Vec<I>> + 'a;

/// Leaf check: every abort event needs an interpretation that extends
/// the longest commit history (Abort-Order), extends the init LCP
/// (Init-Order), and draws from the valid inputs at its index
/// (Definition 28).
///
/// Definition 31 demands a *strict* prefix; we require strictness only
/// for commit histories (where the chain construction enforces it) and
/// relax it to a plain prefix for abort histories: the paper's own ALM
/// specification automaton (Section 6, step A4) emits abort values equal
/// to the initialization prefix when nothing committed and no loose
/// pending inputs exist, and the composition proof only uses non-strict
/// prefix reasoning on abort histories.
fn aborts_feasible<T: Adt, V>(
    abort_events: &[(usize, T::Input, V)],
    longest_commit: &[T::Input],
    lcp: &[T::Input],
    constrain_init_order: bool,
    vi: &[PersistentMultiset<T::Input>],
    extend: &ExtendFn<'_, T::Input, V>,
) -> Option<AbortWitness<T>> {
    let mut chosen = Vec::with_capacity(abort_events.len());
    for (index, input, value) in abort_events {
        let cands = extend(value, longest_commit);
        let ok = cands.into_iter().find(|a| {
            (!constrain_init_order || seq::is_prefix(lcp, a))
                && PersistentMultiset::elems(a)
                    .union_max(&PersistentMultiset::elems(std::slice::from_ref(input)))
                    .is_subset_of(&vi[*index])
        });
        match ok {
            Some(a) => chosen.push((*index, a)),
            None => return None,
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initrel::{ConsensusInit, ExactInit};
    use slin_adt::{ConsInput, ConsOutput, Consensus, Universal, Value};
    use slin_trace::{Action, ClientId};

    type CV = Value;
    type CA = ObjAction<Consensus, CV>;

    fn c(n: u32) -> ClientId {
        ClientId::new(n)
    }
    fn ph(n: u32) -> PhaseId {
        PhaseId::new(n)
    }
    fn p(v: u64) -> ConsInput {
        ConsInput::propose(v)
    }
    fn d(v: u64) -> ConsOutput {
        ConsOutput::decide(v)
    }

    fn quorum_checker() -> SlinChecker<Consensus, ConsensusInit> {
        SlinChecker::owned(Consensus, ConsensusInit::new(), ph(1), ph(2))
    }

    fn backup_checker() -> SlinChecker<Consensus, ConsensusInit> {
        SlinChecker::owned(Consensus, ConsensusInit::new(), ph(2), ph(3))
    }

    #[test]
    fn empty_trace_is_slin() {
        let t: Trace<CA> = Trace::new();
        assert!(quorum_checker().check(&t).is_ok());
        assert!(backup_checker().check(&t).is_ok());
    }

    #[test]
    fn decide_then_switch_with_same_value_is_slin() {
        // Invariant I1 satisfied: c1 decides 1, c2 switches with 1.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
        ]);
        let report = quorum_checker().check(&t).unwrap();
        assert!(report.interpretations_checked >= 1);
        // The abort history starts with the decided value and extends the
        // commit history [p(1)].
        let (_, a) = &report.witness.abort_histories[0];
        assert_eq!(a.first(), Some(&p(1)));
    }

    #[test]
    fn decide_then_switch_with_other_value_violates() {
        // Invariant I1 violated: c1 decides 1 but c2 switches with 2.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
        ]);
        assert!(matches!(
            quorum_checker().check(&t),
            Err(SlinError::NotSpeculativelyLinearizable { .. })
        ));
    }

    #[test]
    fn split_decisions_violate() {
        // Invariant I2 violated.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(2)),
        ]);
        assert!(quorum_checker().check(&t).is_err());
    }

    #[test]
    fn switch_with_unproposed_value_violates() {
        // Invariant I3 violated: 9 was never proposed, so no valid abort
        // history starting with p(9) exists.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::switch(c(1), ph(2), p(1), Value::new(9)),
        ]);
        assert!(quorum_checker().check(&t).is_err());
    }

    #[test]
    fn diverging_switches_without_decision_are_slin() {
        // No decisions: clients may switch with different values (the
        // paper's "no client decides" case — LCP of abort histories empty).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::switch(c(1), ph(2), p(1), Value::new(2)),
            Action::switch(c(2), ph(2), p(2), Value::new(1)),
        ]);
        assert!(quorum_checker().check(&t).is_ok());
    }

    #[test]
    fn backup_decides_unique_switch_value() {
        // Phase (2, 3): both clients arrive with switch value 5 and decide 5
        // (invariants I4, I5).
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::switch(c(2), ph(2), p(2), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(5)),
            Action::respond(c(2), ph(2), p(2), d(5)),
        ]);
        let report = backup_checker().check(&t).unwrap();
        // The adversary can pick [p(5), x] for both init actions, so more
        // than one interpretation is enumerated.
        assert!(report.interpretations_checked > 1);
    }

    #[test]
    fn backup_must_not_decide_own_pending_over_init() {
        // Both init actions carry value 5; deciding 1 (a pending input value,
        // never a switch value) violates Init-Order: every commit history
        // must strictly extend [p(5)] and thus decide 5.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(1)),
        ]);
        assert!(backup_checker().check(&t).is_err());
    }

    #[test]
    fn backup_with_divergent_switch_values_may_decide_either() {
        // Two different switch values: LCP of init histories is empty, so
        // the phase may decide either (as Paxos might).
        for decided in [1u64, 2] {
            let t: Trace<CA> = Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
                Action::respond(c(1), ph(2), p(1), d(decided)),
                Action::respond(c(2), ph(2), p(2), d(decided)),
            ]);
            assert!(backup_checker().check(&t).is_ok(), "decided={decided}");
        }
    }

    #[test]
    fn backup_split_decision_violates() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(1)),
            Action::switch(c(2), ph(2), p(2), Value::new(2)),
            Action::respond(c(1), ph(2), p(1), d(1)),
            Action::respond(c(2), ph(2), p(2), d(2)),
        ]);
        assert!(backup_checker().check(&t).is_err());
    }

    #[test]
    fn foreign_phase_label_rejected() {
        let t: Trace<CA> = Trace::from_actions(vec![Action::invoke(c(1), ph(3), p(1))]);
        assert_eq!(
            quorum_checker().check(&t),
            Err(SlinError::ForeignAction { index: 0 })
        );
    }

    #[test]
    fn exact_relation_universal_adt_roundtrip() {
        // Section 6 setting: universal ADT, switch values are histories.
        let u: Universal<u8> = Universal::new();
        let checker = SlinChecker::owned(u, ExactInit::new(), ph(1), ph(2));
        let t: Trace<ObjAction<Universal<u8>, Vec<u8>>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), 7u8),
            Action::respond(c(1), ph(1), 7u8, vec![7u8]),
            Action::invoke(c(2), ph(1), 9u8),
            Action::switch(c(2), ph(2), 9u8, vec![7u8, 9u8]),
        ]);
        let report = checker.check(&t).unwrap();
        assert_eq!(report.witness.abort_histories[0].1, vec![7, 9]);
    }

    #[test]
    fn exact_relation_rejects_abort_history_dropping_a_commit() {
        // c1's committed [7] must prefix every abort history; switching with
        // the history [9] alone contradicts Abort-Order.
        let u: Universal<u8> = Universal::new();
        let checker = SlinChecker::owned(u, ExactInit::new(), ph(1), ph(2));
        let t: Trace<ObjAction<Universal<u8>, Vec<u8>>> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), 7u8),
            Action::respond(c(1), ph(1), 7u8, vec![7u8]),
            Action::invoke(c(2), ph(1), 9u8),
            Action::switch(c(2), ph(2), 9u8, vec![9u8]),
        ]);
        assert!(checker.check(&t).is_err());
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn parallel_and_sequential_verdicts_are_identical() {
        // Every test trace in this module, under forced multi-threading:
        // the parallel enumeration must reproduce the sequential verdict
        // byte for byte (witness, counts, stats, and error payloads).
        let traces: Vec<Trace<CA>> = vec![
            Trace::new(),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(1)),
            ]),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
            ]),
            Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(5)),
                Action::switch(c(2), ph(2), p(2), Value::new(5)),
                Action::respond(c(1), ph(2), p(1), d(5)),
                Action::respond(c(2), ph(2), p(2), d(5)),
            ]),
            Trace::from_actions(vec![
                Action::switch(c(1), ph(2), p(1), Value::new(1)),
                Action::switch(c(2), ph(2), p(2), Value::new(2)),
                Action::respond(c(1), ph(2), p(1), d(1)),
                Action::respond(c(2), ph(2), p(2), d(2)),
            ]),
        ];
        for t in &traces {
            for (m, n) in [(1, 2), (2, 3)] {
                let chk = SlinChecker::owned(Consensus, ConsensusInit::new(), ph(m), ph(n))
                    .with_threads(4);
                let par = chk.check(t);
                let seq = chk.check_sequential(t);
                assert_eq!(par, seq, "phase ({m}, {n}) on {t:?}");
                assert_eq!(format!("{par:?}"), format!("{seq:?}"));
            }
        }
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn backup_parallel_enumeration_matches_interpretation_count() {
        // The backup phase enumerates > 1 interpretation (adversarial
        // candidate sets); parallel and sequential must count identically.
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::switch(c(1), ph(2), p(1), Value::new(5)),
            Action::switch(c(2), ph(2), p(2), Value::new(5)),
            Action::respond(c(1), ph(2), p(1), d(5)),
            Action::respond(c(2), ph(2), p(2), d(5)),
        ]);
        let chk = backup_checker().with_threads(3);
        let par = chk.check(&t).unwrap();
        let seq = chk.check_sequential(&t).unwrap();
        assert!(par.interpretations_checked > 1);
        assert_eq!(par.interpretations_checked, seq.interpretations_checked);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(par.stats.interpretations, par.interpretations_checked);
        assert!(par.stats.nodes > 0);
    }

    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn budget_exhaustion_reports_node_count() {
        let t: Trace<CA> = Trace::from_actions(vec![
            Action::invoke(c(1), ph(1), p(1)),
            Action::invoke(c(2), ph(1), p(2)),
            Action::respond(c(1), ph(1), p(1), d(1)),
            Action::respond(c(2), ph(1), p(2), d(1)),
        ]);
        let chk = quorum_checker().with_budget(1);
        match chk.check_sequential(&t) {
            Err(SlinError::BudgetExhausted { nodes }) => assert!(nodes > 0),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        // The parallel path reports the identical error.
        assert_eq!(
            chk.with_threads(2).check(&t),
            Err(SlinError::BudgetExhausted { nodes: 2 })
        );
    }

    #[test]
    fn theorem_2_slin_equals_lin_on_switch_free_traces() {
        // SLin(1, m) restricted to the object signature is Lin (Theorem 2):
        // on a switch-free trace the two checkers agree.
        use crate::lin::LinChecker;
        let lin = LinChecker::owned(Consensus);
        let traces: Vec<Trace<CA>> = vec![
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(2), ph(1), p(2), d(2)),
                Action::respond(c(1), ph(1), p(1), d(2)),
            ]),
            Trace::from_actions(vec![
                Action::invoke(c(1), ph(1), p(1)),
                Action::invoke(c(2), ph(1), p(2)),
                Action::respond(c(1), ph(1), p(1), d(1)),
                Action::respond(c(2), ph(1), p(2), d(2)),
            ]),
        ];
        for t in &traces {
            assert_eq!(
                quorum_checker().check(t).is_ok(),
                lin.check(t).is_ok(),
                "{t:?}"
            );
        }
    }
}
