//! Property-based tests for the checkers and the definitional plumbing.

use proptest::prelude::*;
use slin_adt::{Adt, ConsInput, ConsOutput, Consensus, Counter, CounterInput, Value};
use slin_core::classical::ClassicalChecker;
use slin_core::compose::{project_object, project_phase};
use slin_core::gen::{random_linearizable_trace, random_perturbed_trace, GenConfig};
use slin_core::initrel::{CandidateContext, ConsensusInit, ExactInit, InitRelation};
use slin_core::invariants;
use slin_core::lin::{witness_is_valid, LinChecker};
use slin_core::ops;
use slin_core::slin::SlinChecker;
use slin_core::ObjAction;
use slin_trace::{Action, ClientId, PhaseId, Trace};

type CA = ObjAction<Consensus, Value>;

/// A strategy for well-formed single-shot consensus phase traces: every
/// client proposes once and then decides, switches, or stays pending.
fn phase_trace() -> impl Strategy<Value = Trace<CA>> {
    // Per client: (proposal, outcome) where outcome 0 = pending, 1 = decide
    // value v, 2 = switch value v; plus a shuffle seed.
    let client = (1..4u64, 0..3u8, 1..4u64);
    (prop::collection::vec(client, 1..4), any::<u64>()).prop_map(|(clients, seed)| {
        let mut events: Vec<(usize, CA)> = Vec::new();
        for (k, &(prop_v, outcome, out_v)) in clients.iter().enumerate() {
            let c = ClientId::new(k as u32 + 1);
            let input = ConsInput::propose(prop_v);
            events.push((2 * k, Action::invoke(c, PhaseId::new(1), input)));
            match outcome {
                1 => events.push((
                    2 * k + 1,
                    Action::respond(c, PhaseId::new(1), input, ConsOutput::decide(out_v)),
                )),
                2 => events.push((
                    2 * k + 1,
                    Action::switch(c, PhaseId::new(2), input, Value::new(out_v)),
                )),
                _ => {}
            }
        }
        // Deterministic shuffle preserving per-client order (stable sort by
        // a keyed hash of the position).
        let mut keyed: Vec<(u64, usize, CA)> = events
            .into_iter()
            .enumerate()
            .map(|(pos, (cpos, a))| {
                let key = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(pos as u64)
                    .rotate_left((pos % 13) as u32);
                (key, cpos, a)
            })
            .collect();
        keyed.sort_by_key(|(key, _, _)| *key);
        // Restore per-client causality: stable-sort by client-position of
        // each client's events only.
        let mut out: Vec<CA> = Vec::new();
        let mut placed: Vec<(usize, CA)> = keyed.into_iter().map(|(_, p, a)| (p, a)).collect();
        // Simple fix-up: repeatedly emit the earliest-unblocked event.
        while !placed.is_empty() {
            let mut best: Option<usize> = None;
            for (i, (p, a)) in placed.iter().enumerate() {
                let c = a.client();
                // An event is unblocked if no earlier event of the same
                // client remains.
                let blocked = placed.iter().any(|(p2, a2)| a2.client() == c && p2 < p);
                if !blocked {
                    best = Some(i);
                    break;
                }
            }
            let (_, a) = placed.remove(best.expect("some event is unblocked"));
            out.push(a);
        }
        Trace::from_actions(out)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The specialized O(n) consensus linearizability test agrees with the
    /// generic new-definition checker on the object projection.
    #[test]
    fn specialized_consensus_checker_agrees_with_generic(t in phase_trace()) {
        let obj = project_object::<Consensus, Value>(&t);
        if slin_trace::wf::is_well_formed(&obj) {
            let generic = LinChecker::owned(Consensus).check(&obj).is_ok();
            let fast = invariants::consensus_linearizable(&obj);
            prop_assert_eq!(generic, fast, "{:?}", obj);
        }
    }

    /// The SLin checker accepts exactly what the invariant abstraction
    /// promises on single-shot first-phase traces without late decides:
    /// I1 ∧ I2 ∧ I3 ⇒ SLin(1, 2) (the paper's Section 2.4 lemma).
    #[test]
    fn invariants_imply_first_phase_slin(t in phase_trace()) {
        if slin_trace::wf::is_phase_well_formed(&t, PhaseId::new(1), PhaseId::new(2))
            && invariants::first_phase_invariants(&t)
            && !invariants::has_late_decide(&t)
        {
            let chk = SlinChecker::owned(Consensus, ConsensusInit::new(), PhaseId::new(1), PhaseId::new(2));
            prop_assert!(chk.check(&t).is_ok(), "{:?}", t);
        }
    }

    /// Conversely: SLin(1, 2) implies the object projection is
    /// linearizable and the decisions satisfy I2 and I3.
    #[test]
    fn first_phase_slin_implies_invariants(t in phase_trace()) {
        let chk = SlinChecker::owned(Consensus, ConsensusInit::new(), PhaseId::new(1), PhaseId::new(2));
        if chk.check(&t).is_ok() {
            prop_assert!(invariants::i2(&t), "{:?}", t);
            prop_assert!(invariants::i3(&t), "{:?}", t);
            prop_assert!(invariants::consensus_linearizable(&t), "{:?}", t);
        }
    }

    /// Phase projection tiles the composed signature: every event of a
    /// (1, 3) trace lands in the (1, 2) or (2, 3) projection, and switch
    /// actions labelled 2 land in both (Lemma 6's correspondence).
    #[test]
    fn projections_tile_the_signature(t in phase_trace()) {
        let t12 = project_phase::<Consensus, Value>(&t, PhaseId::new(1), PhaseId::new(2));
        let t23 = project_phase::<Consensus, Value>(&t, PhaseId::new(2), PhaseId::new(3));
        prop_assert_eq!(
            t12.len() + t23.len(),
            t.len() + t.iter().filter(|a| a.is_switch() && a.phase().value() == 2).count()
        );
    }

    /// Witnesses returned by the checker always validate against the
    /// definition (`witness_is_valid` re-checks Explains, Validity and
    /// Commit-Order independently of the search).
    #[test]
    fn lin_witnesses_validate(seed in 0..500u64) {
        let cfg = GenConfig { clients: 3, steps: 12, seed };
        let t = random_linearizable_trace(&Consensus, cfg, |rng| {
            use rand::Rng;
            ConsInput::propose(rng.gen_range(1..4u64))
        });
        let w = LinChecker::owned(Consensus).check(&t).unwrap();
        prop_assert!(witness_is_valid(&Consensus, &t, &w));
    }

    /// Linearizability is prefix-closed (a safety property): every prefix
    /// of an accepted trace is accepted.
    #[test]
    fn linearizability_is_prefix_closed(seed in 0..200u64, cut in 0..20usize) {
        let cfg = GenConfig { clients: 3, steps: 12, seed };
        let t = random_perturbed_trace(&Counter, cfg, 0.3, |rng| {
            use rand::Rng;
            if rng.gen_bool(0.5) { CounterInput::Increment } else { CounterInput::Read }
        });
        let cut = cut.min(t.len());
        let prefix = t.truncate_to(cut);
        // Prefixes of well-formed traces can end mid-operation, which
        // stays well-formed; each definition preserves its own verdict.
        // (The two verdicts may differ on duplicate-value traces — the
        // Theorem 1 divergence — so each is guarded independently.)
        if LinChecker::owned(Counter).check(&t).is_ok() {
            prop_assert!(LinChecker::owned(Counter).check(&prefix).is_ok(), "{:?}", prefix);
        }
        if ClassicalChecker::new(&Counter).check(&t).is_ok() {
            prop_assert!(ClassicalChecker::new(&Counter).check(&prefix).is_ok(), "{:?}", prefix);
        }
    }

    /// Differential test for the engine refactor: the parallel
    /// `SlinChecker` returns byte-identical verdicts (witness, counts,
    /// stats, and error payloads) to a single-threaded run, on both the
    /// first-phase and backup-phase checkers.
    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn parallel_slin_matches_sequential(t in phase_trace()) {
        for (m, n) in [(1u32, 2u32), (2, 3)] {
            let chk = SlinChecker::new(
                &Consensus, ConsensusInit::new(), PhaseId::new(m), PhaseId::new(n),
            ).with_threads(4);
            let par = chk.check(&t);
            let seq = chk.check_sequential(&t);
            prop_assert_eq!(&par, &seq, "phase ({}, {}) on {:?}", m, n, t);
            prop_assert_eq!(format!("{:?}", par), format!("{:?}", seq));
        }
    }

    /// Successful checks aggregate engine stats over exactly the enumerated
    /// interpretations, identically on both execution paths.
    #[test]
    #[allow(deprecated)] // compat: the deprecated sequential wrapper is the differential oracle
    fn slin_stats_cover_all_interpretations(t in phase_trace()) {
        let chk = SlinChecker::new(
            &Consensus, ConsensusInit::new(), PhaseId::new(1), PhaseId::new(2),
        );
        if let Ok(report) = chk.check_sequential(&t) {
            prop_assert_eq!(report.stats.interpretations, report.interpretations_checked);
            let par = chk.with_threads(4).check(&t).expect("parity with sequential");
            prop_assert_eq!(par.stats, report.stats);
        }
    }

    /// `inputs_before` is monotone and consistent with the multiset form.
    #[test]
    fn input_bookkeeping_is_consistent(t in phase_trace()) {
        let ms = ops::input_multisets::<Consensus, Value>(&t);
        for i in 0..t.len() {
            prop_assert!(ms[i].is_subset_of(&ms[i + 1]));
            let seq = ops::inputs_before::<Consensus, Value>(&t, i);
            prop_assert_eq!(slin_trace::PersistentMultiset::elems(&seq), ms[i].clone());
        }
    }

    /// Every candidate interpretation offered by the consensus relation is
    /// a member of the relation, starts with the switch value, and is
    /// ADT-equivalent to the canonical singleton.
    #[test]
    fn consensus_candidates_are_sound(v in 1..5u64, inputs in prop::collection::vec(1..5u64, 0..4)) {
        let r = ConsensusInit::new();
        let ctx = CandidateContext::new(
            inputs.iter().map(|&x| ConsInput::propose(x)).collect());
        let value = Value::new(v);
        for h in r.candidates(&value, &ctx) {
            prop_assert!(r.contains(&value, &h));
            prop_assert_eq!(h[0].value(), value);
            prop_assert_eq!(
                Consensus::new().run(&h),
                Consensus::new().run(&[ConsInput::propose(v)])
            );
        }
    }

    /// Exact-relation extensions always extend the prefix and stay in the
    /// relation.
    #[test]
    fn exact_extensions_sound(value in prop::collection::vec(0..4u8, 0..4), cut in 0..4usize) {
        let r = ExactInit::new();
        let ctx = CandidateContext::new(value.clone());
        let cut = cut.min(value.len());
        for h in r.extensions(&value, &value[..cut], &ctx) {
            prop_assert!(r.contains(&value, &h));
            prop_assert!(slin_trace::seq::is_prefix(&value[..cut], &h));
        }
    }
}
