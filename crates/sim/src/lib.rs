//! A deterministic discrete-event simulator for asynchronous message-passing
//! systems with crash faults, nondeterministic message delays, and message
//! loss.
//!
//! The paper's algorithms (Quorum, Paxos — Section 2.1) are stated for "a
//! system composed of client and server processes which communicate by
//! asynchronous message passing and which may crash at any point". This
//! crate simulates exactly that substrate so the algorithms can be executed,
//! traced at the object interface, and measured in *message delays* (the
//! paper's latency unit): with unit message delay, simulated time counts
//! message hops.
//!
//! Everything is deterministic in the seed: delays and drops are drawn from
//! a seeded RNG, and simultaneous events are ordered by a sequence number.
//!
//! # Example
//!
//! ```
//! use slin_sim::{Context, Process, ProcessId, SimConfig, Simulation};
//!
//! struct Ping { peer: ProcessId }
//! struct Pong;
//!
//! impl Process<&'static str, String> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, &'static str, String>) {
//!         ctx.send(self.peer, "ping");
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, &'static str, String>,
//!                   _from: ProcessId, msg: &'static str) {
//!         ctx.record(format!("got {msg}"));
//!     }
//! }
//! impl Process<&'static str, String> for Pong {
//!     fn on_message(&mut self, ctx: &mut Context<'_, &'static str, String>,
//!                   from: ProcessId, _msg: &'static str) {
//!         ctx.send(from, "pong");
//!     }
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let pong = sim.add_process(Box::new(Pong));
//! sim.add_process(Box::new(Ping { peer: pong }));
//! sim.run();
//! assert_eq!(sim.records(), &["got pong".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of a simulated process (dense, assigned by
/// [`Simulation::add_process`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// The numeric value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pr{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pr{}", self.0)
    }
}

/// Simulated time (abstract units; with unit message delay, one unit is one
/// message hop).
pub type Time = u64;

/// A user-chosen timer tag, echoed back by [`Process::on_timer`].
pub type TimerId = u64;

/// Behaviour of a simulated process.
///
/// `M` is the message type; `E` the type of records appended to the global
/// trace (e.g. the object-interface actions of the traced protocol).
pub trait Process<M, E> {
    /// Called once when the simulation starts (before any delivery).
    fn on_start(&mut self, ctx: &mut Context<'_, M, E>) {
        let _ = ctx;
    }

    /// Called on every delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M, E>, from: ProcessId, msg: M);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M, E>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

/// The capabilities handed to a process while it handles an event.
pub struct Context<'a, M, E> {
    now: Time,
    self_id: ProcessId,
    outbox: &'a mut Vec<(ProcessId, M)>,
    timers: &'a mut Vec<(Time, TimerId)>,
    records: &'a mut Vec<E>,
    record_times: &'a mut Vec<Time>,
}

impl<'a, M, E> Context<'a, M, E> {
    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The identifier of the process handling the event.
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Sends a message to another process (asynchronously; may be delayed or
    /// dropped by the network).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends a message to every process in `ids`.
    pub fn broadcast<It>(&mut self, ids: It, msg: M)
    where
        M: Clone,
        It: IntoIterator<Item = ProcessId>,
    {
        for to in ids {
            self.send(to, msg.clone());
        }
    }

    /// Schedules [`Process::on_timer`] to fire `delay` time units from now.
    pub fn set_timer(&mut self, delay: Time, timer: TimerId) {
        self.timers.push((delay, timer));
    }

    /// Appends an event to the global trace (in emission order).
    pub fn record(&mut self, event: E) {
        self.records.push(event);
        self.record_times.push(self.now);
    }
}

/// Network and fault configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; equal seeds give identical executions.
    pub seed: u64,
    /// Minimum message delay (inclusive).
    pub min_delay: Time,
    /// Maximum message delay (inclusive).
    pub max_delay: Time,
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Safety bound on the number of processed events.
    pub max_steps: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            min_delay: 1,
            max_delay: 1,
            drop_prob: 0.0,
            max_steps: 1_000_000,
        }
    }
}

enum Payload<M> {
    Deliver { from: ProcessId, msg: M },
    Timer(TimerId),
    Crash,
}

struct Event<M> {
    time: Time,
    seq: u64,
    to: ProcessId,
    payload: Payload<M>,
}

/// The discrete-event simulation: processes, a network, a clock, and the
/// recorded trace.
pub struct Simulation<M, E> {
    config: SimConfig,
    processes: Vec<Box<dyn Process<M, E>>>,
    crashed: Vec<bool>,
    queue: BinaryHeap<Reverse<(Time, u64, usize)>>,
    events: Vec<Option<Event<M>>>,
    next_seq: u64,
    now: Time,
    rng: StdRng,
    records: Vec<E>,
    record_times: Vec<Time>,
    steps: usize,
    messages_sent: usize,
    messages_delivered: usize,
}

impl<M, E> Simulation<M, E> {
    /// Creates an empty simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        assert!(
            config.min_delay <= config.max_delay,
            "min_delay > max_delay"
        );
        assert!(
            (0.0..=1.0).contains(&config.drop_prob),
            "drop_prob out of range"
        );
        Simulation {
            config,
            processes: Vec::new(),
            crashed: Vec::new(),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            next_seq: 0,
            now: 0,
            rng: StdRng::seed_from_u64(config.seed),
            records: Vec::new(),
            record_times: Vec::new(),
            steps: 0,
            messages_sent: 0,
            messages_delivered: 0,
        }
    }

    /// Registers a process and returns its identifier.
    pub fn add_process(&mut self, process: Box<dyn Process<M, E>>) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(process);
        self.crashed.push(false);
        id
    }

    /// Schedules a crash of `process` at absolute time `at`: from then on it
    /// receives no events and sends nothing.
    pub fn crash_at(&mut self, process: ProcessId, at: Time) {
        let seq = self.bump_seq();
        self.push_event(Event {
            time: at,
            seq,
            to: process,
            payload: Payload::Crash,
        });
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn push_event(&mut self, ev: Event<M>) {
        let idx = self.events.len();
        self.queue.push(Reverse((ev.time, ev.seq, idx)));
        self.events.push(Some(ev));
    }

    /// Dispatches the outbox/timers produced by one handler invocation.
    fn flush(
        &mut self,
        from: ProcessId,
        outbox: Vec<(ProcessId, M)>,
        timers: Vec<(Time, TimerId)>,
    ) {
        for (to, msg) in outbox {
            self.messages_sent += 1;
            if self.config.drop_prob > 0.0 && self.rng.gen_bool(self.config.drop_prob) {
                continue;
            }
            let delay = if self.config.min_delay == self.config.max_delay {
                self.config.min_delay
            } else {
                self.rng
                    .gen_range(self.config.min_delay..=self.config.max_delay)
            };
            let ev = Event {
                time: self.now + delay,
                seq: self.bump_seq(),
                to,
                payload: Payload::Deliver { from, msg },
            };
            self.push_event(ev);
        }
        for (delay, timer) in timers {
            let ev = Event {
                time: self.now + delay,
                seq: self.bump_seq(),
                to: from,
                payload: Payload::Timer(timer),
            };
            self.push_event(ev);
        }
    }

    fn dispatch(&mut self, idx: usize) {
        let Some(ev) = self.events[idx].take() else {
            return;
        };
        let to = ev.to;
        let pid = to.0 as usize;
        if let Payload::Crash = ev.payload {
            self.crashed[pid] = true;
            return;
        }
        if self.crashed[pid] {
            return;
        }
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = Context {
                now: self.now,
                self_id: to,
                outbox: &mut outbox,
                timers: &mut timers,
                records: &mut self.records,
                record_times: &mut self.record_times,
            };
            let process = &mut self.processes[pid];
            match ev.payload {
                Payload::Deliver { from, msg } => {
                    self.messages_delivered += 1;
                    process.on_message(&mut ctx, from, msg);
                }
                Payload::Timer(timer) => process.on_timer(&mut ctx, timer),
                Payload::Crash => unreachable!("handled above"),
            }
        }
        self.flush(to, outbox, timers);
    }

    /// Runs `on_start` for every process (in identifier order), then
    /// processes events until quiescence or the step bound.
    pub fn run(&mut self) {
        self.start();
        self.run_to_quiescence();
    }

    /// Runs only the `on_start` handlers.
    pub fn start(&mut self) {
        for pid in 0..self.processes.len() {
            if self.crashed[pid] {
                continue;
            }
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            {
                let mut ctx = Context {
                    now: self.now,
                    self_id: ProcessId(pid as u32),
                    outbox: &mut outbox,
                    timers: &mut timers,
                    records: &mut self.records,
                    record_times: &mut self.record_times,
                };
                self.processes[pid].on_start(&mut ctx);
            }
            self.flush(ProcessId(pid as u32), outbox, timers);
        }
    }

    /// Processes queued events until none remain or `max_steps` is hit.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Processes a single event; returns `false` at quiescence or when the
    /// step bound is reached.
    pub fn step(&mut self) -> bool {
        if self.steps >= self.config.max_steps {
            return false;
        }
        let Some(Reverse((time, _, idx))) = self.queue.pop() else {
            return false;
        };
        self.steps += 1;
        self.now = time;
        self.dispatch(idx);
        true
    }

    /// The current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The recorded trace events, in emission order.
    pub fn records(&self) -> &[E] {
        &self.records
    }

    /// The simulated time at which each record was emitted (parallel to
    /// [`Simulation::records`]).
    pub fn record_times(&self) -> &[Time] {
        &self.record_times
    }

    /// Consumes the simulation and returns the recorded trace.
    pub fn into_records(self) -> Vec<E> {
        self.records
    }

    /// Number of messages handed to the network (including dropped ones).
    pub fn messages_sent(&self) -> usize {
        self.messages_sent
    }

    /// Number of messages actually delivered to a live process.
    pub fn messages_delivered(&self) -> usize {
        self.messages_delivered
    }

    /// Whether the given process has crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.crashed[p.0 as usize]
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl<M, E> fmt::Debug for Simulation<M, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processes", &self.processes.len())
            .field("steps", &self.steps)
            .field("records", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: replies with the received number + 1.
    struct Echo;
    /// Driver: sends 0, records each reply, stops at 3.
    struct Driver {
        peer: ProcessId,
    }

    impl Process<u64, u64> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u64, u64>, from: ProcessId, msg: u64) {
            ctx.send(from, msg + 1);
        }
    }

    impl Process<u64, u64> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
            ctx.send(self.peer, 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64, u64>, _from: ProcessId, msg: u64) {
            ctx.record(msg);
            if msg < 3 {
                ctx.send(self.peer, msg);
            }
        }
    }

    fn build(config: SimConfig) -> Simulation<u64, u64> {
        let mut sim = Simulation::new(config);
        let echo = sim.add_process(Box::new(Echo));
        sim.add_process(Box::new(Driver { peer: echo }));
        sim
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = build(SimConfig::default());
        sim.run();
        assert_eq!(sim.records(), &[1, 2, 3]);
        // Unit delays: each round trip is 2 time units.
        assert_eq!(sim.record_times(), &[2, 4, 6]);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SimConfig {
            seed: 42,
            min_delay: 1,
            max_delay: 5,
            ..SimConfig::default()
        };
        let mut a = build(cfg);
        a.run();
        let mut b = build(cfg);
        b.run();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.record_times(), b.record_times());
    }

    #[test]
    fn drops_lose_messages() {
        let cfg = SimConfig {
            seed: 7,
            drop_prob: 1.0,
            ..SimConfig::default()
        };
        let mut sim = build(cfg);
        sim.run();
        assert!(sim.records().is_empty());
        assert_eq!(sim.messages_sent(), 1);
    }

    #[test]
    fn crashed_process_is_silent() {
        let mut sim = build(SimConfig::default());
        sim.crash_at(ProcessId(0), 0); // crash the echo server immediately
        sim.run();
        assert!(sim.records().is_empty());
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed;
        impl Process<(), u64> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, (), u64>) {
                ctx.set_timer(10, 1);
                ctx.set_timer(5, 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, (), u64>, _: ProcessId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, (), u64>, timer: TimerId) {
                ctx.record(timer);
            }
        }
        let mut sim: Simulation<(), u64> = Simulation::new(SimConfig::default());
        sim.add_process(Box::new(Timed));
        sim.run();
        assert_eq!(sim.records(), &[2, 1]);
        assert_eq!(sim.record_times(), &[5, 10]);
    }

    #[test]
    fn step_bound_halts_runaway() {
        struct Loopy;
        impl Process<u64, u64> for Loopy {
            fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
                let me = ctx.self_id();
                ctx.send(me, 0);
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u64, u64>, _: ProcessId, m: u64) {
                let me = ctx.self_id();
                ctx.send(me, m + 1);
            }
        }
        let cfg = SimConfig {
            max_steps: 100,
            ..SimConfig::default()
        };
        let mut sim: Simulation<u64, u64> = Simulation::new(cfg);
        sim.add_process(Box::new(Loopy));
        sim.run();
        assert_eq!(sim.steps(), 100);
    }
}
