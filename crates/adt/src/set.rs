//! A set ADT (add / remove / contains).
//!
//! Adds an object with *commuting* operations on distinct elements: many
//! interleavings linearize identically, exercising the checkers' memoisation
//! (states collide heavily).

use crate::Adt;
use std::collections::BTreeSet;
use std::fmt;

/// A set input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SetInput {
    /// Insert an element; reports whether it was new.
    Add(u64),
    /// Remove an element; reports whether it was present.
    Remove(u64),
    /// Membership test.
    Contains(u64),
}

impl fmt::Debug for SetInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetInput::Add(v) => write!(f, "add({v})"),
            SetInput::Remove(v) => write!(f, "rem({v})"),
            SetInput::Contains(v) => write!(f, "has({v})"),
        }
    }
}

/// A set output: the boolean result of the operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetOutput(pub bool);

impl fmt::Debug for SetOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "={}", self.0)
    }
}

/// A mathematical set of `u64`s, initially empty.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Set, SetInput, SetOutput};
/// let s = Set::new();
/// let h = [SetInput::Add(3), SetInput::Add(3), SetInput::Contains(3)];
/// assert_eq!(s.output(&h), Some(SetOutput(true)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Set;

impl Set {
    /// Creates the set ADT.
    pub fn new() -> Self {
        Set
    }
}

impl Adt for Set {
    type Input = SetInput;
    type Output = SetOutput;
    type State = BTreeSet<u64>;

    fn initial(&self) -> Self::State {
        BTreeSet::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let mut next = state.clone();
        let out = match input {
            SetInput::Add(v) => next.insert(*v),
            SetInput::Remove(v) => next.remove(v),
            SetInput::Contains(v) => next.contains(v),
        };
        (next, SetOutput(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_idempotent_on_state_but_not_output() {
        let s = Set::new();
        let once = s.run(&[SetInput::Add(1)]);
        let twice = s.run(&[SetInput::Add(1), SetInput::Add(1)]);
        assert_eq!(once, twice);
        assert_eq!(
            s.output(&[SetInput::Add(1), SetInput::Add(1)]),
            Some(SetOutput(false))
        );
    }

    #[test]
    fn remove_reports_presence() {
        let s = Set::new();
        assert_eq!(s.output(&[SetInput::Remove(9)]), Some(SetOutput(false)));
        assert_eq!(
            s.output(&[SetInput::Add(9), SetInput::Remove(9)]),
            Some(SetOutput(true))
        );
    }

    #[test]
    fn contains_after_remove() {
        let s = Set::new();
        let h = [SetInput::Add(2), SetInput::Remove(2), SetInput::Contains(2)];
        assert_eq!(s.output(&h), Some(SetOutput(false)));
    }

    #[test]
    fn operations_on_distinct_elements_commute() {
        let s = Set::new();
        let a = s.run(&[SetInput::Add(1), SetInput::Add(2)]);
        let b = s.run(&[SetInput::Add(2), SetInput::Add(1)]);
        assert_eq!(a, b);
    }
}
