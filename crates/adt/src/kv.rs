//! A key–value store ADT.
//!
//! Models the replicated data services the paper motivates (Chubby, Gaios):
//! a dictionary whose operations are replicated through consensus in the
//! `replicated_kv` example.

use crate::Adt;
use std::collections::BTreeMap;
use std::fmt;

/// A key–value store input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KvInput {
    /// Bind `key` to `value`.
    Put(u32, u64),
    /// Look up `key`.
    Get(u32),
    /// Remove `key`.
    Delete(u32),
}

impl fmt::Debug for KvInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvInput::Put(k, v) => write!(f, "put({k},{v})"),
            KvInput::Get(k) => write!(f, "get({k})"),
            KvInput::Delete(k) => write!(f, "del({k})"),
        }
    }
}

/// A key–value store output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KvOutput {
    /// Acknowledgement of a put or delete.
    Ack,
    /// The value bound to the requested key, if any.
    Found(Option<u64>),
}

impl fmt::Debug for KvOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvOutput::Ack => write!(f, "ok"),
            KvOutput::Found(Some(v)) => write!(f, "={v}"),
            KvOutput::Found(None) => write!(f, "=∅"),
        }
    }
}

/// A key–value store, initially empty.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, KvStore, KvInput, KvOutput};
/// let kv = KvStore::new();
/// let h = [KvInput::Put(1, 10), KvInput::Get(1)];
/// assert_eq!(kv.output(&h), Some(KvOutput::Found(Some(10))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct KvStore;

impl KvStore {
    /// Creates the key–value store ADT.
    pub fn new() -> Self {
        KvStore
    }
}

impl Adt for KvStore {
    type Input = KvInput;
    type Output = KvOutput;
    type State = BTreeMap<u32, u64>;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let mut next = state.clone();
        match input {
            KvInput::Put(k, v) => {
                next.insert(*k, *v);
                (next, KvOutput::Ack)
            }
            KvInput::Get(k) => {
                let found = next.get(k).copied();
                (next, KvOutput::Found(found))
            }
            KvInput::Delete(k) => {
                next.remove(k);
                (next, KvOutput::Ack)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_missing_key() {
        let kv = KvStore::new();
        assert_eq!(kv.output(&[KvInput::Get(7)]), Some(KvOutput::Found(None)));
    }

    #[test]
    fn put_then_delete_then_get() {
        let kv = KvStore::new();
        let h = [KvInput::Put(1, 5), KvInput::Delete(1), KvInput::Get(1)];
        assert_eq!(kv.output(&h), Some(KvOutput::Found(None)));
    }

    #[test]
    fn puts_overwrite() {
        let kv = KvStore::new();
        let h = [KvInput::Put(1, 5), KvInput::Put(1, 6), KvInput::Get(1)];
        assert_eq!(kv.output(&h), Some(KvOutput::Found(Some(6))));
    }

    #[test]
    fn independent_keys() {
        let kv = KvStore::new();
        let h = [KvInput::Put(1, 5), KvInput::Put(2, 6), KvInput::Get(1)];
        assert_eq!(kv.output(&h), Some(KvOutput::Found(Some(5))));
    }
}
