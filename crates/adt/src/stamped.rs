//! Unique-input stamping of an ADT.
//!
//! Several classical treatments of linearizability assume that all invoked
//! inputs are distinct; the paper's new definition is designed to allow
//! *repeated events*, and its Theorem 1 claims equivalence with the
//! classical definition. Our reproduction found that the equivalence holds
//! under the unique-inputs assumption but **diverges on duplicated input
//! values** (see `tests/thm1_equivalence.rs`): multiset validity lets a
//! commit history account a response to one client against a *pending
//! duplicate invocation of another client*.
//!
//! [`Stamped`] restores the unique-inputs assumption mechanically: inputs
//! are paired with a stamp that the output function ignores, so the
//! sequential semantics is unchanged while every invocation becomes
//! distinguishable.

use crate::Adt;
use std::fmt::Debug;
use std::hash::Hash;

/// An ADT whose inputs are `(stamp, input)` pairs; the stamp does not
/// affect outputs.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Counter, CounterInput, CounterOutput, Stamped};
/// let s = Stamped::new(Counter::new());
/// let h = [(0, CounterInput::Increment), (1, CounterInput::Read)];
/// assert_eq!(s.output(&h), Some(CounterOutput::Count(1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Stamped<T> {
    inner: T,
}

impl<T> Stamped<T> {
    /// Wraps an ADT.
    pub fn new(inner: T) -> Self {
        Stamped { inner }
    }

    /// The underlying ADT.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Adt> Adt for Stamped<T> {
    type Input = (u32, T::Input);
    type Output = T::Output;
    type State = T::State;

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        self.inner.apply(state, &input.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{ConsInput, ConsOutput, Consensus};

    #[test]
    fn stamps_do_not_change_outputs() {
        let s = Stamped::new(Consensus::new());
        let h = [(9, ConsInput::propose(5)), (2, ConsInput::propose(7))];
        assert_eq!(s.output(&h), Some(ConsOutput::decide(5)));
    }

    #[test]
    fn stamped_inputs_are_distinct() {
        let a = (0u32, ConsInput::propose(5));
        let b = (1u32, ConsInput::propose(5));
        assert_ne!(a, b);
    }

    #[test]
    fn state_tracks_inner_state() {
        let s = Stamped::new(Consensus::new());
        let st = s.run(&[(0, ConsInput::propose(3))]);
        assert_eq!(st, Consensus::new().run(&[ConsInput::propose(3)]));
    }
}
