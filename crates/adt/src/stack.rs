//! A LIFO stack ADT.
//!
//! Complements the queue: pop/push do not commute with themselves, and the
//! LIFO discipline creates ordering constraints that run *backwards*
//! through a history, a useful stress for the chain-search checker.

use crate::Adt;
use std::fmt;

/// A stack input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StackInput {
    /// Push an element.
    Push(u64),
    /// Pop the top element.
    Pop,
}

impl fmt::Debug for StackInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackInput::Push(v) => write!(f, "push({v})"),
            StackInput::Pop => write!(f, "pop"),
        }
    }
}

/// A stack output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StackOutput {
    /// Acknowledgement of a push.
    Ack,
    /// The popped element, or `None` when the stack was empty.
    Popped(Option<u64>),
}

impl fmt::Debug for StackOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackOutput::Ack => write!(f, "ok"),
            StackOutput::Popped(Some(v)) => write!(f, "={v}"),
            StackOutput::Popped(None) => write!(f, "=∅"),
        }
    }
}

/// A LIFO stack, initially empty. `Pop` on an empty stack returns
/// `Popped(None)`.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Stack, StackInput, StackOutput};
/// let s = Stack::new();
/// let h = [StackInput::Push(1), StackInput::Push(2), StackInput::Pop];
/// assert_eq!(s.output(&h), Some(StackOutput::Popped(Some(2))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Stack;

impl Stack {
    /// Creates the stack ADT.
    pub fn new() -> Self {
        Stack
    }
}

impl Adt for Stack {
    type Input = StackInput;
    type Output = StackOutput;
    type State = Vec<u64>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let mut next = state.clone();
        match input {
            StackInput::Push(v) => {
                next.push(*v);
                (next, StackOutput::Ack)
            }
            StackInput::Pop => {
                let top = next.pop();
                (next, StackOutput::Popped(top))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let s = Stack::new();
        let h = [
            StackInput::Push(1),
            StackInput::Push(2),
            StackInput::Pop,
            StackInput::Pop,
        ];
        assert_eq!(s.output(&h), Some(StackOutput::Popped(Some(1))));
    }

    #[test]
    fn pop_empty() {
        let s = Stack::new();
        assert_eq!(
            s.output(&[StackInput::Pop]),
            Some(StackOutput::Popped(None))
        );
    }

    #[test]
    fn interleaved_push_pop() {
        let s = Stack::new();
        let h = [
            StackInput::Push(1),
            StackInput::Pop,
            StackInput::Push(2),
            StackInput::Pop,
        ];
        assert_eq!(s.output(&h), Some(StackOutput::Popped(Some(2))));
        assert_eq!(s.run(&h), Vec::<u64>::new());
    }
}
