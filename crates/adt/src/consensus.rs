//! The consensus ADT (paper Figure 1 and Example 1).
//!
//! `I_Cons = {p(v)}`, `O_Cons = {d(v)}`, and
//! `f_Cons([p(v1), p(v2), …, p(vn)]) = d(v1)`: in a sequential execution the
//! first proposed value is decided by every subsequent operation.

use crate::Adt;
use std::fmt;

/// A proposal value. The paper assumes proposals differ from `⊥`; we encode
/// `⊥` by absence (`Option<Value>`) rather than a sentinel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// Creates a proposal value.
    pub fn new(v: u64) -> Self {
        Value(v)
    }

    /// The numeric value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

/// A consensus input `p(v)` ("propose v").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConsInput {
    value: Value,
}

impl ConsInput {
    /// The proposal `p(v)`.
    pub fn propose(v: impl Into<Value>) -> Self {
        ConsInput { value: v.into() }
    }

    /// The proposed value.
    pub fn value(&self) -> Value {
        self.value
    }
}

impl fmt::Debug for ConsInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p({})", self.value)
    }
}

/// A consensus output `d(v)` ("decide v").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConsOutput {
    value: Value,
}

impl ConsOutput {
    /// The decision `d(v)`.
    pub fn decide(v: impl Into<Value>) -> Self {
        ConsOutput { value: v.into() }
    }

    /// The decided value.
    pub fn value(&self) -> Value {
        self.value
    }
}

impl fmt::Debug for ConsOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d({})", self.value)
    }
}

/// The consensus abstract data type of Figure 1: a write-once shared value.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Consensus, ConsInput, ConsOutput};
/// let cons = Consensus::new();
/// let h = [ConsInput::propose(9), ConsInput::propose(1)];
/// assert_eq!(cons.output(&h), Some(ConsOutput::decide(9)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Consensus;

impl Consensus {
    /// Creates the consensus ADT.
    pub fn new() -> Self {
        Consensus
    }
}

impl Adt for Consensus {
    type Input = ConsInput;
    type Output = ConsOutput;
    /// `Some(v)` once a value has been written, `None` (`⊥`) initially.
    type State = Option<Value>;

    fn initial(&self) -> Self::State {
        None
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        match state {
            // V = ⊥: adopt the proposal and return it.
            None => (
                Some(input.value()),
                ConsOutput {
                    value: input.value(),
                },
            ),
            // V ≠ ⊥: the first proposal wins.
            Some(v) => (Some(*v), ConsOutput { value: *v }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_decides() {
        let cons = Consensus::new();
        let h: Vec<ConsInput> = [3u64, 1, 4, 1, 5]
            .iter()
            .map(|&v| ConsInput::propose(v))
            .collect();
        assert_eq!(cons.output(&h), Some(ConsOutput::decide(3)));
    }

    #[test]
    fn singleton_history_returns_own_value() {
        let cons = Consensus::new();
        assert_eq!(
            cons.output(&[ConsInput::propose(42)]),
            Some(ConsOutput::decide(42))
        );
    }

    #[test]
    fn state_is_write_once() {
        let cons = Consensus::new();
        let s0 = cons.initial();
        let (s1, _) = cons.apply(&s0, &ConsInput::propose(1));
        let (s2, out) = cons.apply(&s1, &ConsInput::propose(2));
        assert_eq!(s1, s2);
        assert_eq!(out, ConsOutput::decide(1));
    }

    #[test]
    fn repeated_proposals_are_idempotent_on_state() {
        let cons = Consensus::new();
        let a = cons.run(&[ConsInput::propose(7), ConsInput::propose(7)]);
        let b = cons.run(&[ConsInput::propose(7)]);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(format!("{:?}", ConsInput::propose(5)), "p(5)");
        assert_eq!(format!("{:?}", ConsOutput::decide(5)), "d(5)");
    }
}
