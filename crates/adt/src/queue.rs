//! A FIFO queue ADT.
//!
//! The queue is the classic example of Herlihy & Wing's linearizability paper
//! (cited as \[12\]); its non-commutative operations exercise the checkers on
//! histories where ordering constraints propagate.

use crate::Adt;
use std::collections::VecDeque;
use std::fmt;

/// A queue input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueueInput {
    /// Append an element at the tail.
    Enqueue(u64),
    /// Remove the element at the head.
    Dequeue,
}

impl fmt::Debug for QueueInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueInput::Enqueue(v) => write!(f, "enq({v})"),
            QueueInput::Dequeue => write!(f, "deq"),
        }
    }
}

/// A queue output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueueOutput {
    /// Acknowledgement of an enqueue.
    Ack,
    /// The dequeued element, or `None` when the queue was empty.
    Dequeued(Option<u64>),
}

impl fmt::Debug for QueueOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueOutput::Ack => write!(f, "ok"),
            QueueOutput::Dequeued(Some(v)) => write!(f, "={v}"),
            QueueOutput::Dequeued(None) => write!(f, "=∅"),
        }
    }
}

/// A FIFO queue, initially empty. `Dequeue` on an empty queue returns
/// `Dequeued(None)` (a total version of the partial dequeue).
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Queue, QueueInput, QueueOutput};
/// let q = Queue::new();
/// let h = [QueueInput::Enqueue(1), QueueInput::Enqueue(2), QueueInput::Dequeue];
/// assert_eq!(q.output(&h), Some(QueueOutput::Dequeued(Some(1))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Queue;

impl Queue {
    /// Creates the queue ADT.
    pub fn new() -> Self {
        Queue
    }
}

impl Adt for Queue {
    type Input = QueueInput;
    type Output = QueueOutput;
    type State = VecDeque<u64>;

    fn initial(&self) -> Self::State {
        VecDeque::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let mut next = state.clone();
        match input {
            QueueInput::Enqueue(v) => {
                next.push_back(*v);
                (next, QueueOutput::Ack)
            }
            QueueInput::Dequeue => {
                let head = next.pop_front();
                (next, QueueOutput::Dequeued(head))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = Queue::new();
        let h = [
            QueueInput::Enqueue(1),
            QueueInput::Enqueue(2),
            QueueInput::Dequeue,
            QueueInput::Dequeue,
        ];
        assert_eq!(q.output(&h), Some(QueueOutput::Dequeued(Some(2))));
    }

    #[test]
    fn dequeue_on_empty_returns_none() {
        let q = Queue::new();
        assert_eq!(
            q.output(&[QueueInput::Dequeue]),
            Some(QueueOutput::Dequeued(None))
        );
    }

    #[test]
    fn state_tracks_remaining_elements() {
        let q = Queue::new();
        let s = q.run(&[
            QueueInput::Enqueue(1),
            QueueInput::Enqueue(2),
            QueueInput::Dequeue,
        ]);
        assert_eq!(s, VecDeque::from([2]));
    }
}
