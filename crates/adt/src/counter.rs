//! A counter ADT (increment / read).
//!
//! Unlike consensus, every input changes observable state, which makes the
//! counter a good stress test for the linearization-search checkers: the
//! order of increments between two reads matters.

use crate::Adt;
use std::fmt;

/// A counter input.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterInput {
    /// Add one to the counter.
    Increment,
    /// Read the current count.
    Read,
}

impl fmt::Debug for CounterInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterInput::Increment => write!(f, "inc"),
            CounterInput::Read => write!(f, "get"),
        }
    }
}

/// A counter output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterOutput {
    /// Acknowledgement of an increment.
    Ack,
    /// The count observed by a read.
    Count(u64),
}

impl fmt::Debug for CounterOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterOutput::Ack => write!(f, "ok"),
            CounterOutput::Count(n) => write!(f, "={n}"),
        }
    }
}

/// A monotone counter, initially zero.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Counter, CounterInput, CounterOutput};
/// let c = Counter::new();
/// let h = [CounterInput::Increment, CounterInput::Increment, CounterInput::Read];
/// assert_eq!(c.output(&h), Some(CounterOutput::Count(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Counter;

impl Counter {
    /// Creates the counter ADT.
    pub fn new() -> Self {
        Counter
    }
}

impl Adt for Counter {
    type Input = CounterInput;
    type Output = CounterOutput;
    type State = u64;

    fn initial(&self) -> Self::State {
        0
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        match input {
            CounterInput::Increment => (state + 1, CounterOutput::Ack),
            CounterInput::Read => (*state, CounterOutput::Count(*state)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Counter::new();
        assert_eq!(
            c.output(&[CounterInput::Read]),
            Some(CounterOutput::Count(0))
        );
    }

    #[test]
    fn increments_accumulate() {
        let c = Counter::new();
        let h = vec![CounterInput::Increment; 5];
        assert_eq!(c.run(&h), 5);
    }

    #[test]
    fn reads_interleaved_with_increments() {
        let c = Counter::new();
        let h = [
            CounterInput::Increment,
            CounterInput::Read,
            CounterInput::Increment,
            CounterInput::Read,
        ];
        assert_eq!(c.output(&h), Some(CounterOutput::Count(2)));
    }
}
