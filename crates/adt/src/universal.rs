//! The universal ADT (paper Section 6).
//!
//! The output function of the universal ADT is the identity: it "responds to
//! an invocation with its full trace, in the form of a history". It abstracts
//! generic state-machine replication: applying any other ADT's output
//! function to the returned history yields an implementation of that ADT.

use crate::Adt;
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;

/// The output of the universal ADT: the complete history of inputs received
/// so far (including the one being answered).
pub type UniversalOutput<I> = Vec<I>;

/// The universal ADT over an arbitrary input alphabet `I`.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Universal};
/// let u: Universal<u8> = Universal::new();
/// assert_eq!(u.output(&[1, 2, 3]), Some(vec![1, 2, 3]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Universal<I> {
    _marker: PhantomData<fn() -> I>,
}

impl<I> Universal<I> {
    /// Creates the universal ADT.
    pub fn new() -> Self {
        Universal {
            _marker: PhantomData,
        }
    }
}

impl<I> Default for Universal<I> {
    fn default() -> Self {
        Universal::new()
    }
}

impl<I: Clone + Eq + Hash + Debug> Adt for Universal<I> {
    type Input = I;
    type Output = UniversalOutput<I>;
    type State = Vec<I>;

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        let mut next = state.clone();
        next.push(input.clone());
        (next.clone(), next)
    }
}

/// Derives an implementation of any ADT `T` from the universal ADT: apply
/// `T`'s output function to the history returned by the universal object
/// (the construction sketched in Section 6).
///
/// Returns `None` when the universal output is the empty history.
///
/// # Example
///
/// ```
/// use slin_adt::{derive_output, Consensus, ConsInput, ConsOutput};
/// let hist = vec![ConsInput::propose(4), ConsInput::propose(6)];
/// assert_eq!(derive_output(&Consensus::new(), &hist), Some(ConsOutput::decide(4)));
/// ```
pub fn derive_output<T: Adt>(adt: &T, universal_output: &[T::Input]) -> Option<T::Output> {
    adt.output(universal_output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{ConsInput, ConsOutput, Consensus};

    #[test]
    fn output_is_identity_on_history() {
        let u: Universal<char> = Universal::new();
        assert_eq!(u.output(&['a', 'b']), Some(vec!['a', 'b']));
    }

    #[test]
    fn state_equals_output() {
        let u: Universal<u32> = Universal::new();
        let (s, o) = u.apply(&vec![1, 2], &3);
        assert_eq!(s, o);
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn derives_consensus_from_universal() {
        let hist = vec![ConsInput::propose(9), ConsInput::propose(2)];
        assert_eq!(
            derive_output(&Consensus::new(), &hist),
            Some(ConsOutput::decide(9))
        );
        assert_eq!(derive_output(&Consensus::new(), &[]), None);
    }
}
