//! Enumerable input domains for bounded symbolic analysis and seeded
//! generation.
//!
//! The static analyzer in `slin-analysis` certifies a
//! [`Partitioner`](crate::Partitioner) by *exhaustively* replaying
//! [`Adt::apply`] over every history it can build from a small,
//! representative input alphabet. That alphabet is what [`DomainSpec`]
//! describes: a finite set of inputs that exercises at least two
//! independence classes and every operation shape of the ADT, so the two
//! contract obligations (same-key output projection, cross-key transition
//! commutation) are checked over the full bounded state space rather than
//! a random sample.
//!
//! Product ADTs additionally implement [`KeyedDomain`], which exposes the
//! *per-key* input constructors as a weighted op table ([`KeyedOp`]). The
//! same table drives two consumers that used to hand-roll it separately:
//!
//! * the analyzer's enumerable alphabet ([`KeyedDomain::inputs_for_key`]),
//! * the seeded multi-key trace generators in `slin-core::gen`
//!   (weight-respecting random draws).
//!
//! Non-partitionable ADTs ([`Queue`], [`Stack`], [`Consensus`]) implement
//! only [`DomainSpec`]: they serve as negative fixtures — any partitioner
//! that claims independence classes for them must be rejected by the
//! analyzer with a counterexample.

use crate::array::{CounterVecInput, RegArrayInput};
use crate::counter::CounterInput;
use crate::kv::KvInput;
use crate::queue::QueueInput;
use crate::register::RegInput;
use crate::set::SetInput;
use crate::stack::StackInput;
use crate::{
    Adt, ConsInput, Consensus, Counter, CounterVector, KvStore, Queue, Register, RegisterArray,
    Set, Stack,
};

/// How many independence classes the default [`DomainSpec::input_domain`]
/// of a [`KeyedDomain`] ADT spans. Two classes suffice: every contract
/// obligation relates at most two keys (a projection victim and the
/// removed other-key input, or a commuting pair).
pub const DOMAIN_KEYS: u32 = 2;

/// How many distinct payload values the default domain draws per valued
/// operation. Two values distinguish "overwritten" from "never written"
/// and "mine" from "yours" everywhere it matters.
pub const DOMAIN_VALS: u64 = 2;

/// An ADT with a small enumerable input alphabet for bounded exhaustive
/// exploration.
///
/// Implementations must keep the domain *small* (a handful of inputs): the
/// analyzer explores every reachable `(state, projections)` signature over
/// histories drawn from it, so the alphabet size is the branching factor.
/// The domain must cover every input constructor of the ADT and, for
/// partitionable ADTs, at least [`DOMAIN_KEYS`] independence classes.
///
/// # Example
///
/// ```
/// use slin_adt::{DomainSpec, KvStore};
/// let domain = KvStore.input_domain();
/// assert_eq!(domain.len(), 8); // {put(v1), put(v2), get, del} × keys {1, 2}
/// ```
pub trait DomainSpec: Adt {
    /// The enumerable input alphabet explored by the analyzer.
    fn input_domain(&self) -> Vec<Self::Input>;

    /// The enumerable **switch/phase domain**: the candidate init histories
    /// a switch action may carry under the exact init relation, as explored
    /// by the switch-independence analyzer (`slin-analysis`).
    ///
    /// The default enumerates every history of length at most two over
    /// [`input_domain`](DomainSpec::input_domain) — empty, singletons, and
    /// ordered pairs. Two elements suffice for the same reason
    /// [`DOMAIN_KEYS`] is two: every decomposition obligation relates at
    /// most two independence classes, and ordered pairs are exactly what
    /// distinguishes a relation that factors per class from one that
    /// couples classes through cross-key order.
    fn switch_domain(&self) -> Vec<Vec<Self::Input>> {
        let base = self.input_domain();
        let mut values = vec![Vec::new()];
        values.extend(base.iter().map(|i| vec![i.clone()]));
        for a in &base {
            for b in &base {
                values.push(vec![a.clone(), b.clone()]);
            }
        }
        values
    }
}

/// One weighted per-key input constructor of a product ADT.
///
/// `make(key, v)` builds the input for independence class `key`; `v` is
/// drawn from `1..=vals` when `vals` is `Some`, and passed as `0` (and
/// ignored by `make`) otherwise. `weight` is the draw weight the seeded
/// generators honour — kept here so the generator op mix is part of the
/// ADT's one domain description instead of being re-hand-rolled per call
/// site.
pub struct KeyedOp<I> {
    /// Relative draw weight in the seeded generators.
    pub weight: u8,
    /// Payload range `1..=vals`, or `None` for payload-free operations.
    pub vals: Option<u64>,
    /// Constructor from `(key, payload)`.
    pub make: fn(u32, u64) -> I,
}

/// A product ADT whose inputs are enumerable *per independence class*.
///
/// The op table is the single source of truth for what an operation on
/// class `key` looks like; [`DomainSpec`] falls out of it by enumerating
/// [`DOMAIN_KEYS`] classes × [`DOMAIN_VALS`] payloads.
pub trait KeyedDomain: Adt {
    /// The per-key input constructors, in a fixed documented order (the
    /// analyzer's exploration order and the generators' draw order).
    fn keyed_ops() -> Vec<KeyedOp<Self::Input>>;

    /// Every input touching class `key`, payloads drawn from `1..=vals`.
    fn inputs_for_key(key: u32, vals: u64) -> Vec<Self::Input> {
        let mut inputs = Vec::new();
        for op in Self::keyed_ops() {
            match op.vals {
                Some(_) => inputs.extend((1..=vals).map(|v| (op.make)(key, v))),
                None => inputs.push((op.make)(key, 0)),
            }
        }
        inputs
    }
}

/// The default bounded alphabet of a keyed ADT: [`DOMAIN_KEYS`] classes ×
/// the per-key ops with [`DOMAIN_VALS`] payloads.
fn keyed_domain<T: KeyedDomain>() -> Vec<T::Input> {
    (1..=DOMAIN_KEYS)
        .flat_map(|k| T::inputs_for_key(k, DOMAIN_VALS))
        .collect()
}

impl KeyedDomain for KvStore {
    fn keyed_ops() -> Vec<KeyedOp<KvInput>> {
        vec![
            KeyedOp {
                weight: 1,
                vals: Some(4),
                make: |k, v| KvInput::Put(k, v),
            },
            KeyedOp {
                weight: 2,
                vals: None,
                make: |k, _| KvInput::Get(k),
            },
            KeyedOp {
                weight: 1,
                vals: None,
                make: |k, _| KvInput::Delete(k),
            },
        ]
    }
}

impl DomainSpec for KvStore {
    fn input_domain(&self) -> Vec<KvInput> {
        keyed_domain::<KvStore>()
    }
}

impl KeyedDomain for Set {
    fn keyed_ops() -> Vec<KeyedOp<SetInput>> {
        vec![
            KeyedOp {
                weight: 2,
                vals: None,
                make: |k, _| SetInput::Add(k as u64),
            },
            KeyedOp {
                weight: 2,
                vals: None,
                make: |k, _| SetInput::Contains(k as u64),
            },
            KeyedOp {
                weight: 1,
                vals: None,
                make: |k, _| SetInput::Remove(k as u64),
            },
        ]
    }
}

impl DomainSpec for Set {
    fn input_domain(&self) -> Vec<SetInput> {
        keyed_domain::<Set>()
    }
}

impl KeyedDomain for RegisterArray {
    fn keyed_ops() -> Vec<KeyedOp<RegArrayInput>> {
        vec![
            KeyedOp {
                weight: 1,
                vals: Some(4),
                make: RegArrayInput::Write,
            },
            KeyedOp {
                weight: 1,
                vals: None,
                make: |k, _| RegArrayInput::Read(k),
            },
        ]
    }
}

impl DomainSpec for RegisterArray {
    fn input_domain(&self) -> Vec<RegArrayInput> {
        keyed_domain::<RegisterArray>()
    }
}

impl KeyedDomain for CounterVector {
    fn keyed_ops() -> Vec<KeyedOp<CounterVecInput>> {
        vec![
            KeyedOp {
                weight: 1,
                vals: None,
                make: |k, _| CounterVecInput::Increment(k),
            },
            KeyedOp {
                weight: 1,
                vals: None,
                make: |k, _| CounterVecInput::Read(k),
            },
        ]
    }
}

impl DomainSpec for CounterVector {
    fn input_domain(&self) -> Vec<CounterVecInput> {
        keyed_domain::<CounterVector>()
    }
}

impl DomainSpec for Counter {
    fn input_domain(&self) -> Vec<CounterInput> {
        vec![CounterInput::Increment, CounterInput::Read]
    }
}

impl DomainSpec for Register {
    fn input_domain(&self) -> Vec<RegInput> {
        (1..=DOMAIN_VALS)
            .map(RegInput::Write)
            .chain([RegInput::Read])
            .collect()
    }
}

impl DomainSpec for Queue {
    fn input_domain(&self) -> Vec<QueueInput> {
        (1..=DOMAIN_VALS)
            .map(QueueInput::Enqueue)
            .chain([QueueInput::Dequeue])
            .collect()
    }
}

impl DomainSpec for Stack {
    fn input_domain(&self) -> Vec<StackInput> {
        (1..=DOMAIN_VALS)
            .map(StackInput::Push)
            .chain([StackInput::Pop])
            .collect()
    }
}

impl DomainSpec for Consensus {
    fn input_domain(&self) -> Vec<ConsInput> {
        (1..=DOMAIN_VALS).map(ConsInput::propose).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KvKeyPartitioner, Partitioner};
    use std::collections::BTreeSet;

    #[test]
    fn keyed_domains_cover_every_constructor_and_two_classes() {
        let kv = KvStore.input_domain();
        assert!(kv.contains(&KvInput::Put(1, 1)));
        assert!(kv.contains(&KvInput::Get(2)));
        assert!(kv.contains(&KvInput::Delete(1)));
        let keys: BTreeSet<u32> = kv
            .iter()
            .filter_map(|i| KvKeyPartitioner.key_of(i))
            .collect();
        assert_eq!(keys, BTreeSet::from([1, 2]));
    }

    #[test]
    fn domains_are_deterministic_and_duplicate_free() {
        assert_eq!(KvStore.input_domain(), KvStore.input_domain());
        let set = Set.input_domain();
        let dedup: BTreeSet<_> = set.iter().collect();
        assert_eq!(dedup.len(), set.len(), "duplicate inputs in domain");
        let kv = KvStore.input_domain();
        let dedup: BTreeSet<_> = kv.iter().collect();
        assert_eq!(dedup.len(), kv.len(), "duplicate inputs in domain");
    }

    #[test]
    fn inputs_for_key_respects_payload_range() {
        let inputs = KvStore::inputs_for_key(3, 2);
        assert_eq!(
            inputs,
            vec![
                KvInput::Put(3, 1),
                KvInput::Put(3, 2),
                KvInput::Get(3),
                KvInput::Delete(3),
            ]
        );
    }

    #[test]
    fn switch_domain_covers_empty_singleton_and_pairs() {
        let domain = KvStore.input_domain();
        let switches = KvStore.switch_domain();
        assert_eq!(
            switches.len(),
            1 + domain.len() + domain.len() * domain.len()
        );
        assert!(switches.contains(&vec![]));
        assert!(switches.contains(&vec![KvInput::Put(1, 1)]));
        assert!(switches.contains(&vec![KvInput::Put(1, 1), KvInput::Get(2)]));
        assert!(switches.contains(&vec![KvInput::Get(2), KvInput::Put(1, 1)]));
        assert!(switches.iter().all(|v| v.len() <= 2));
        assert_eq!(switches, KvStore.switch_domain(), "deterministic");
    }

    #[test]
    fn non_partitionable_domains_are_enumerable() {
        assert_eq!(Queue.input_domain().len(), 3);
        assert_eq!(Stack.input_domain().len(), 3);
        assert_eq!(Consensus.input_domain().len(), 2);
        assert_eq!(Counter.input_domain().len(), 2);
        assert_eq!(Register.input_domain().len(), 3);
    }
}
