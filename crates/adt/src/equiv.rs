//! History equivalence with respect to an ADT (paper Section 2.3).
//!
//! Two histories are *equivalent* when they bring the object into the same
//! logical state: the response to any new invocation is independent of which
//! of the two was executed. For deterministic state-machine ADTs this is
//! exactly equality of reached states, which is how we decide it.
//!
//! Switch values are required to denote sets of *equivalent* histories, so
//! this module is what justifies representing an `rinit` image by a single
//! canonical representative in the checkers.

use crate::Adt;

/// The state reached by replaying `history` (a convenience re-export of
/// [`Adt::run`] under the name used in discussions of equivalence).
pub fn reachable_state<T: Adt>(adt: &T, history: &[T::Input]) -> T::State {
    adt.run(history)
}

/// Whether two histories are equivalent with respect to `adt`: they lead to
/// the same sequential state, hence the same outputs for every continuation.
///
/// # Example
///
/// ```
/// use slin_adt::{histories_equivalent, Consensus, ConsInput};
/// let p = ConsInput::propose;
/// // Any two histories starting with the same proposal are equivalent.
/// assert!(histories_equivalent(&Consensus::new(), &[p(1), p(2)], &[p(1), p(3), p(4)]));
/// assert!(!histories_equivalent(&Consensus::new(), &[p(1)], &[p(2)]));
/// ```
pub fn histories_equivalent<T: Adt>(adt: &T, h1: &[T::Input], h2: &[T::Input]) -> bool {
    adt.run(h1) == adt.run(h2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{ConsInput, Consensus};
    use crate::counter::{Counter, CounterInput};
    use crate::queue::{Queue, QueueInput};

    #[test]
    fn consensus_collapses_after_first_proposal() {
        let p = ConsInput::propose;
        let cons = Consensus::new();
        assert!(histories_equivalent(&cons, &[p(5)], &[p(5), p(9), p(1)]));
    }

    #[test]
    fn empty_history_only_equivalent_to_no_ops() {
        let cons = Consensus::new();
        let reads: [ConsInput; 0] = [];
        assert!(histories_equivalent(&cons, &reads, &[]));
        assert!(!histories_equivalent(&cons, &[], &[ConsInput::propose(1)]));
    }

    #[test]
    fn counter_equivalence_counts_increments() {
        let c = Counter::new();
        let h1 = [CounterInput::Increment, CounterInput::Read];
        let h2 = [CounterInput::Read, CounterInput::Increment];
        assert!(histories_equivalent(&c, &h1, &h2));
        let h3 = [CounterInput::Increment, CounterInput::Increment];
        assert!(!histories_equivalent(&c, &h1, &h3));
    }

    #[test]
    fn queue_equivalence_is_content_sensitive() {
        let q = Queue::new();
        let h1 = [QueueInput::Enqueue(1), QueueInput::Dequeue];
        let h2 = [QueueInput::Enqueue(2), QueueInput::Dequeue];
        assert!(histories_equivalent(&q, &h1, &h2)); // both leave it empty
        let h3 = [QueueInput::Enqueue(1)];
        assert!(!histories_equivalent(&q, &h1, &h3));
    }

    #[test]
    fn reachable_state_matches_run() {
        let c = Counter::new();
        let h = [CounterInput::Increment; 3];
        assert_eq!(reachable_state(&c, &h), 3);
    }
}
