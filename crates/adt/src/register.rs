//! A read/write register ADT.
//!
//! Linearizability was originally stated for registers (Lamport's atomic
//! registers, cited as \[17, 18\] in the paper); the register ADT exercises
//! checkers on an object whose state is overwritten rather than write-once.

use crate::Adt;
use std::fmt;

/// A register input: write a value or read the current one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegInput {
    /// Overwrite the register contents.
    Write(u64),
    /// Read the register contents.
    Read,
}

impl fmt::Debug for RegInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegInput::Write(v) => write!(f, "wr({v})"),
            RegInput::Read => write!(f, "rd"),
        }
    }
}

/// A register output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegOutput {
    /// Acknowledgement of a write.
    Ack,
    /// The value observed by a read (`None` if never written).
    Value(Option<u64>),
}

impl fmt::Debug for RegOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOutput::Ack => write!(f, "ok"),
            RegOutput::Value(Some(v)) => write!(f, "={v}"),
            RegOutput::Value(None) => write!(f, "=⊥"),
        }
    }
}

/// A single read/write register, initially unwritten.
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, Register, RegInput, RegOutput};
/// let r = Register::new();
/// let h = [RegInput::Write(3), RegInput::Read];
/// assert_eq!(r.output(&h), Some(RegOutput::Value(Some(3))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Register;

impl Register {
    /// Creates the register ADT.
    pub fn new() -> Self {
        Register
    }
}

impl Adt for Register {
    type Input = RegInput;
    type Output = RegOutput;
    type State = Option<u64>;

    fn initial(&self) -> Self::State {
        None
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        match input {
            RegInput::Write(v) => (Some(*v), RegOutput::Ack),
            RegInput::Read => (*state, RegOutput::Value(*state)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_write_sees_bottom() {
        let r = Register::new();
        assert_eq!(r.output(&[RegInput::Read]), Some(RegOutput::Value(None)));
    }

    #[test]
    fn last_write_wins() {
        let r = Register::new();
        let h = [RegInput::Write(1), RegInput::Write(2), RegInput::Read];
        assert_eq!(r.output(&h), Some(RegOutput::Value(Some(2))));
    }

    #[test]
    fn writes_ack() {
        let r = Register::new();
        assert_eq!(r.output(&[RegInput::Write(9)]), Some(RegOutput::Ack));
    }

    #[test]
    fn reads_do_not_change_state() {
        let r = Register::new();
        let a = r.run(&[RegInput::Write(5), RegInput::Read, RegInput::Read]);
        let b = r.run(&[RegInput::Write(5)]);
        assert_eq!(a, b);
    }
}
