//! Composite (product) ADTs: arrays of registers and vectors of counters.
//!
//! Each input names the cell it touches, and cells never interact — the
//! structural property the [`crate::Partitioner`] soundness contract
//! demands. These ADTs exist to exercise partition-aware and streaming
//! checking on objects whose *state* is a genuine product over keys (unlike
//! [`crate::KvStore`], whose product structure lives in the dictionary),
//! and they back ROADMAP open item 3 ("more partitionable ADTs").
//!
//! * [`RegisterArray`] — an unbounded array of independent read/write
//!   registers, addressed by cell index ([`crate::RegArrayPartitioner`] keys on
//!   it);
//! * [`CounterVector`] — an unbounded vector of independent monotone
//!   counters ([`crate::CounterVecPartitioner`] keys on the slot).

use crate::counter::CounterOutput;
use crate::register::RegOutput;
use crate::Adt;
use std::collections::BTreeMap;
use std::fmt;

/// An input of the [`RegisterArray`] ADT: every operation names its cell.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegArrayInput {
    /// Overwrite cell `.0` with value `.1`.
    Write(u32, u64),
    /// Read cell `.0`.
    Read(u32),
}

impl RegArrayInput {
    /// The cell this input touches.
    pub fn cell(&self) -> u32 {
        match self {
            RegArrayInput::Write(k, _) => *k,
            RegArrayInput::Read(k) => *k,
        }
    }
}

impl fmt::Debug for RegArrayInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegArrayInput::Write(k, v) => write!(f, "wr[{k}]({v})"),
            RegArrayInput::Read(k) => write!(f, "rd[{k}]"),
        }
    }
}

/// An unbounded array of independent read/write registers, all initially
/// unwritten. Outputs reuse [`RegOutput`].
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, RegArrayInput, RegOutput, RegisterArray};
/// let r = RegisterArray::new();
/// let h = [
///     RegArrayInput::Write(3, 7),
///     RegArrayInput::Write(4, 9),
///     RegArrayInput::Read(3),
/// ];
/// assert_eq!(r.output(&h), Some(RegOutput::Value(Some(7))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RegisterArray;

impl RegisterArray {
    /// Creates the register-array ADT.
    pub fn new() -> Self {
        RegisterArray
    }
}

impl Adt for RegisterArray {
    type Input = RegArrayInput;
    type Output = RegOutput;
    type State = BTreeMap<u32, u64>;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        match input {
            RegArrayInput::Write(k, v) => {
                let mut next = state.clone();
                next.insert(*k, *v);
                (next, RegOutput::Ack)
            }
            RegArrayInput::Read(k) => (state.clone(), RegOutput::Value(state.get(k).copied())),
        }
    }
}

/// An input of the [`CounterVector`] ADT: every operation names its slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterVecInput {
    /// Add one to slot `.0`.
    Increment(u32),
    /// Read slot `.0`.
    Read(u32),
}

impl CounterVecInput {
    /// The slot this input touches.
    pub fn slot(&self) -> u32 {
        match self {
            CounterVecInput::Increment(k) => *k,
            CounterVecInput::Read(k) => *k,
        }
    }
}

impl fmt::Debug for CounterVecInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterVecInput::Increment(k) => write!(f, "inc[{k}]"),
            CounterVecInput::Read(k) => write!(f, "get[{k}]"),
        }
    }
}

/// An unbounded vector of independent monotone counters, all initially
/// zero. Outputs reuse [`CounterOutput`].
///
/// # Example
///
/// ```
/// use slin_adt::{Adt, CounterOutput, CounterVecInput, CounterVector};
/// let c = CounterVector::new();
/// let h = [
///     CounterVecInput::Increment(2),
///     CounterVecInput::Increment(2),
///     CounterVecInput::Increment(5),
///     CounterVecInput::Read(2),
/// ];
/// assert_eq!(c.output(&h), Some(CounterOutput::Count(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CounterVector;

impl CounterVector {
    /// Creates the counter-vector ADT.
    pub fn new() -> Self {
        CounterVector
    }
}

impl Adt for CounterVector {
    type Input = CounterVecInput;
    type Output = CounterOutput;
    type State = BTreeMap<u32, u64>;

    fn initial(&self) -> Self::State {
        BTreeMap::new()
    }

    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output) {
        match input {
            CounterVecInput::Increment(k) => {
                let mut next = state.clone();
                *next.entry(*k).or_insert(0) += 1;
                (next, CounterOutput::Ack)
            }
            CounterVecInput::Read(k) => (
                state.clone(),
                CounterOutput::Count(state.get(k).copied().unwrap_or(0)),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_cells_are_independent() {
        let r = RegisterArray::new();
        let h = [
            RegArrayInput::Write(1, 5),
            RegArrayInput::Write(2, 6),
            RegArrayInput::Read(1),
        ];
        assert_eq!(r.output(&h), Some(RegOutput::Value(Some(5))));
        assert_eq!(
            r.output(&[RegArrayInput::Read(9)]),
            Some(RegOutput::Value(None))
        );
    }

    #[test]
    fn last_write_per_cell_wins() {
        let r = RegisterArray::new();
        let h = [
            RegArrayInput::Write(1, 5),
            RegArrayInput::Write(2, 8),
            RegArrayInput::Write(1, 7),
            RegArrayInput::Read(1),
        ];
        assert_eq!(r.output(&h), Some(RegOutput::Value(Some(7))));
    }

    #[test]
    fn counter_slots_accumulate_independently() {
        let c = CounterVector::new();
        let h = [
            CounterVecInput::Increment(1),
            CounterVecInput::Increment(2),
            CounterVecInput::Increment(1),
            CounterVecInput::Read(1),
        ];
        assert_eq!(c.output(&h), Some(CounterOutput::Count(2)));
        assert_eq!(
            c.output(&[CounterVecInput::Read(3)]),
            Some(CounterOutput::Count(0))
        );
    }

    #[test]
    fn composite_states_are_products_over_cells() {
        // Removing other-cell inputs never changes a cell's reached state.
        let r = RegisterArray::new();
        let h = [
            RegArrayInput::Write(1, 5),
            RegArrayInput::Write(2, 6),
            RegArrayInput::Write(1, 7),
        ];
        let only1: Vec<_> = h.iter().copied().filter(|i| i.cell() == 1).collect();
        assert_eq!(r.run(&h).get(&1), r.run(&only1).get(&1));
    }
}
