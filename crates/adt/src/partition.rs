//! Partitioning ADT histories into independent sub-histories.
//!
//! Multi-key workloads pay the checkers' exponential interleaving cost for
//! operations that can never interact: a `put(1, _)` and a `get(2)` commute
//! in every history, yet a monolithic chain search still explores their
//! relative orders. A [`Partitioner`] captures the compositional structure
//! that makes *P-compositional* checking sound (cf. Herlihy–Wing locality
//! and the replication-aware / library-compositionality lines of work): it
//! classifies each input into an independence class ("key"), and the
//! checkers in `slin-core` split a trace into one sub-trace per class,
//! check the sub-traces in parallel, and recombine the verdicts.
//!
//! # Soundness contract
//!
//! An implementation may return `Some(k)` for an input `i` **only if** the
//! ADT factors as a product over the keys it emits: for every history `h`,
//!
//! * `f_T(h ::: i)` equals `f_T(h|k ::: i)`, where `h|k` is the
//!   subsequence of `h` with key `k` (outputs depend only on same-key
//!   inputs), and
//! * same-key outputs are unaffected by removing other-key inputs anywhere
//!   in the history (transitions on distinct keys commute).
//!
//! Inputs that read or write state shared across classes must map to
//! `None`; the checkers then fall back to monolithic checking of the whole
//! trace. [`IdentityPartitioner`] returns `None` for everything and is the
//! correct (trivial) partitioner for non-partitionable ADTs such as
//! [`Consensus`](crate::Consensus) or [`Queue`](crate::Queue).
//!
//! ## Machine-checking the contract
//!
//! The contract is not just prose: for any ADT that also implements
//! [`DomainSpec`](crate::DomainSpec), the `slin-analysis` crate discharges
//! both obligations by bounded exhaustive exploration — `certify(&adt,
//! &partitioner, &config)` returns either a deterministic, content-hashed
//! `Certificate` (JSON, committed under `analysis/certs/` and kept fresh
//! by CI) or a shrunk counterexample that replays as a real
//! partitioned-vs-monolithic checker divergence. Run it with
//!
//! ```text
//! cargo run -p slin-analysis --bin slin-analyze -- --all
//! ```
//!
//! and install the proof at session-build time with
//! `SessionBuilder::partitioner_certified` / `cert_store` in `slin-core`
//! (policy knob: `CertPolicy`). New partitioners should ship with a
//! `DomainSpec` and a committed certificate.
//!
//! # Example
//!
//! ```
//! use slin_adt::{KvInput, KvKeyPartitioner, KvStore, Partitioner};
//! let p = KvKeyPartitioner;
//! assert_eq!(p.key_of(&KvInput::Put(3, 7)), Some(3));
//! assert_eq!(p.key_of(&KvInput::Get(4)), Some(4));
//! ```

use crate::array::{CounterVecInput, RegArrayInput};
use crate::kv::KvInput;
use crate::set::SetInput;
use crate::{Adt, CounterVector, KvStore, RegisterArray, Set};
use std::fmt::Debug;
use std::hash::Hash;

/// Classifies ADT inputs into independence classes ("keys").
///
/// See the [module docs](self) for the soundness contract an implementation
/// must uphold; the checkers in `slin-core` rely on it when they split a
/// trace per key and check the sub-traces independently.
pub trait Partitioner<T: Adt> {
    /// The independence-class label. Keys order the partitions, so merged
    /// statistics are deterministic.
    type Key: Clone + Ord + Eq + Hash + Debug + Send + Sync;

    /// The class of `input`, or `None` when the input may touch state of
    /// every class (forcing the identity fallback: one partition holding
    /// the whole trace).
    fn key_of(&self, input: &T::Input) -> Option<Self::Key>;
}

/// Borrowed partitioners classify exactly like their referent, so APIs
/// taking a partitioner by value (the `slin-core` session builder) also
/// accept `&P`.
impl<T: Adt, P: Partitioner<T>> Partitioner<T> for &P {
    type Key = P::Key;

    fn key_of(&self, input: &T::Input) -> Option<Self::Key> {
        (*self).key_of(input)
    }
}

/// The trivial partitioner: classifies nothing, so every trace stays in
/// one partition and partitioned checking degenerates to the monolithic
/// path. Sound for **every** ADT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentityPartitioner;

impl<T: Adt> Partitioner<T> for IdentityPartitioner {
    type Key = u8;

    fn key_of(&self, _input: &T::Input) -> Option<u8> {
        None
    }
}

/// Per-key partitioner for the [`KvStore`] ADT: `put`/`get`/`del` touch
/// exactly the dictionary entry they name, so distinct keys never interact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvKeyPartitioner;

impl Partitioner<KvStore> for KvKeyPartitioner {
    type Key = u32;

    fn key_of(&self, input: &KvInput) -> Option<u32> {
        Some(match input {
            KvInput::Put(k, _) => *k,
            KvInput::Get(k) => *k,
            KvInput::Delete(k) => *k,
        })
    }
}

/// Per-element partitioner for the [`Set`] ADT: `add`/`rem`/`has` touch
/// exactly the membership bit of the element they name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetElemPartitioner;

impl Partitioner<Set> for SetElemPartitioner {
    type Key = u64;

    fn key_of(&self, input: &SetInput) -> Option<u64> {
        Some(match input {
            SetInput::Add(v) => *v,
            SetInput::Remove(v) => *v,
            SetInput::Contains(v) => *v,
        })
    }
}

/// Per-cell partitioner for the composite [`RegisterArray`] ADT: every
/// input names the one register cell it reads or overwrites, so the ADT is
/// a product over cell indices by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegArrayPartitioner;

impl Partitioner<RegisterArray> for RegArrayPartitioner {
    type Key = u32;

    fn key_of(&self, input: &RegArrayInput) -> Option<u32> {
        Some(input.cell())
    }
}

/// Per-slot partitioner for the composite [`CounterVector`] ADT: increments
/// and reads touch exactly the slot they name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterVecPartitioner;

impl Partitioner<CounterVector> for CounterVecPartitioner {
    type Key = u32;

    fn key_of(&self, input: &CounterVecInput) -> Option<u32> {
        Some(input.slot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConsInput, Consensus};

    #[test]
    fn kv_inputs_key_on_their_dictionary_entry() {
        let p = KvKeyPartitioner;
        assert_eq!(p.key_of(&KvInput::Put(1, 9)), Some(1));
        assert_eq!(p.key_of(&KvInput::Get(2)), Some(2));
        assert_eq!(p.key_of(&KvInput::Delete(3)), Some(3));
    }

    #[test]
    fn set_inputs_key_on_their_element() {
        let p = SetElemPartitioner;
        assert_eq!(p.key_of(&SetInput::Add(8)), Some(8));
        assert_eq!(p.key_of(&SetInput::Remove(8)), Some(8));
        assert_eq!(p.key_of(&SetInput::Contains(9)), Some(9));
    }

    #[test]
    fn identity_partitioner_classifies_nothing() {
        let p = IdentityPartitioner;
        assert_eq!(
            Partitioner::<Consensus>::key_of(&p, &ConsInput::propose(1)),
            None
        );
        assert_eq!(Partitioner::<KvStore>::key_of(&p, &KvInput::Get(1)), None);
    }

    #[test]
    fn composite_inputs_key_on_their_cell() {
        assert_eq!(
            RegArrayPartitioner.key_of(&RegArrayInput::Write(3, 9)),
            Some(3)
        );
        assert_eq!(RegArrayPartitioner.key_of(&RegArrayInput::Read(4)), Some(4));
        assert_eq!(
            CounterVecPartitioner.key_of(&CounterVecInput::Increment(5)),
            Some(5)
        );
        assert_eq!(
            CounterVecPartitioner.key_of(&CounterVecInput::Read(6)),
            Some(6)
        );
    }

    /// The product-ADT contract behind `KvKeyPartitioner`: removing
    /// other-key inputs never changes a same-key output.
    #[test]
    fn kv_outputs_are_invariant_under_other_key_projection() {
        let kv = KvStore::new();
        let h = [
            KvInput::Put(1, 5),
            KvInput::Put(2, 6),
            KvInput::Delete(2),
            KvInput::Put(1, 7),
            KvInput::Get(1),
        ];
        let projected: Vec<KvInput> = h
            .iter()
            .copied()
            .filter(|i| KvKeyPartitioner.key_of(i) == Some(1))
            .collect();
        assert_eq!(kv.output(&h), kv.output(&projected));
    }
}
