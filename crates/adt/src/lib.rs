//! Abstract data types (ADTs) for speculative linearizability.
//!
//! Section 4.1 of *Speculative Linearizability* (PLDI 2012) defines an ADT as
//! a tuple `T = (I_T, O_T, f_T)` where `f_T : I_T* → O_T` is an *output
//! function*: the response to an invocation is determined by the history of
//! inputs received so far. As the paper notes, computing the output function
//! amounts to replaying a state-machine description, so this crate exposes
//! the state-machine form ([`Adt`]) and derives the output-function form
//! ([`Adt::output`]) from it.
//!
//! The crate ships the ADTs used throughout the workspace:
//!
//! * [`Consensus`] — the paper's running example (Figure 1);
//! * [`Register`] — a read/write register;
//! * [`Counter`] — an increment/read counter;
//! * [`Queue`] — a FIFO queue;
//! * [`KvStore`] — a small key–value store;
//! * [`Universal`] — the universal ADT of Section 6, whose output is the full
//!   input history (the basis for generic state-machine replication);
//! * [`RegisterArray`] / [`CounterVector`] — composite (product) ADTs whose
//!   cells never interact, built for partition-aware and streaming checking.
//!
//! The [`partition`] module classifies inputs into independence classes
//! ([`Partitioner`]) so the checkers can split multi-key histories into
//! independent sub-histories and check them in parallel. The [`domain`]
//! module describes each ADT's enumerable input alphabet ([`DomainSpec`],
//! [`KeyedDomain`]), which the `slin-analysis` crate explores exhaustively
//! to *certify* that a partitioner upholds the soundness contract.
//!
//! # Example
//!
//! ```
//! use slin_adt::{Adt, Consensus, ConsInput, ConsOutput};
//!
//! let cons = Consensus::new();
//! let h = [ConsInput::propose(2), ConsInput::propose(7)];
//! // The first proposal wins, no matter how many follow (Figure 1).
//! assert_eq!(cons.output(&h), Some(ConsOutput::decide(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod consensus;
pub mod counter;
pub mod domain;
pub mod equiv;
pub mod kv;
pub mod partition;
pub mod queue;
pub mod register;
pub mod set;
pub mod stack;
pub mod stamped;
pub mod universal;

pub use array::{CounterVecInput, CounterVector, RegArrayInput, RegisterArray};
pub use consensus::{ConsInput, ConsOutput, Consensus, Value};
pub use counter::{Counter, CounterInput, CounterOutput};
pub use domain::{DomainSpec, KeyedDomain, KeyedOp, DOMAIN_KEYS, DOMAIN_VALS};
pub use equiv::{histories_equivalent, reachable_state};
pub use kv::{KvInput, KvOutput, KvStore};
pub use partition::{
    CounterVecPartitioner, IdentityPartitioner, KvKeyPartitioner, Partitioner, RegArrayPartitioner,
    SetElemPartitioner,
};
pub use queue::{Queue, QueueInput, QueueOutput};
pub use register::{RegInput, RegOutput, Register};
pub use set::{Set, SetInput, SetOutput};
pub use stack::{Stack, StackInput, StackOutput};
pub use stamped::Stamped;
pub use universal::{derive_output, Universal, UniversalOutput};

use std::fmt::Debug;
use std::hash::Hash;

/// A deterministic abstract data type, in state-machine form.
///
/// The paper's output function `f_T : I_T* → O_T` is recovered by
/// [`Adt::output`], which replays a history from [`Adt::initial`] through
/// [`Adt::apply`]. Output functions are defined on *non-empty* histories
/// (a response always has at least its own invocation in its commit history),
/// so `output` returns `None` for the empty history.
///
/// Implementations must be deterministic: `apply` is a pure function of the
/// state and input.
pub trait Adt {
    /// The input (invocation) alphabet `I_T`.
    type Input: Clone + Eq + Hash + Debug;
    /// The output (response) alphabet `O_T`.
    type Output: Clone + Eq + Hash + Debug;
    /// The sequential state replayed by the output function.
    type State: Clone + Eq + Hash + Debug;

    /// The initial sequential state.
    fn initial(&self) -> Self::State;

    /// Applies one input to a state, returning the successor state and the
    /// output that a sequential execution would return for this input.
    fn apply(&self, state: &Self::State, input: &Self::Input) -> (Self::State, Self::Output);

    /// The paper's output function `f_T`: the output of the *last* input of
    /// `history`, or `None` when `history` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use slin_adt::{Adt, Counter, CounterInput, CounterOutput};
    /// let c = Counter::new();
    /// let h = [CounterInput::Increment, CounterInput::Read];
    /// assert_eq!(c.output(&h), Some(CounterOutput::Count(1)));
    /// assert_eq!(c.output(&[]), None);
    /// ```
    fn output(&self, history: &[Self::Input]) -> Option<Self::Output> {
        let mut state = self.initial();
        let mut last = None;
        for input in history {
            let (next, out) = self.apply(&state, input);
            state = next;
            last = Some(out);
        }
        last
    }

    /// Replays `history` and returns the reached state.
    fn run(&self, history: &[Self::Input]) -> Self::State {
        let mut state = self.initial();
        for input in history {
            state = self.apply(&state, input).0;
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_of_empty_history_is_none() {
        assert_eq!(Consensus::new().output(&[]), None);
        assert_eq!(Counter::new().output(&[]), None);
    }

    #[test]
    fn run_matches_incremental_apply() {
        let q = Queue::new();
        let h = [
            QueueInput::Enqueue(1),
            QueueInput::Enqueue(2),
            QueueInput::Dequeue,
        ];
        let mut s = q.initial();
        for i in &h {
            s = q.apply(&s, i).0;
        }
        assert_eq!(q.run(&h), s);
    }
}
