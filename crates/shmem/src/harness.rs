//! Workload harness for the shared-memory experiments.

use crate::composed::SpeculativeConsensus;
use crate::ConsAction;
use slin_adt::consensus::Value;
use slin_adt::Consensus;
use slin_core::compose::{verify_phase_chain, PhaseChainVerification};
use slin_core::initrel::ConsensusInit;
use slin_trace::{ClientId, Trace};
use std::sync::Arc;

/// A shared-memory consensus workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Number of proposing threads (each proposes its index × 10).
    pub threads: u32,
    /// Run proposals one after another (contention-free) instead of
    /// concurrently.
    pub sequential: bool,
}

impl Workload {
    /// A concurrent workload of `threads` proposers.
    pub fn concurrent(threads: u32) -> Self {
        Workload {
            threads,
            sequential: false,
        }
    }

    /// A sequential (contention-free) workload of `threads` proposers.
    pub fn sequential(threads: u32) -> Self {
        Workload {
            threads,
            sequential: true,
        }
    }
}

/// The result of a shared-memory run.
#[derive(Debug, Clone)]
pub struct ShmemOutcome {
    /// The recorded object-interface trace.
    pub trace: Trace<ConsAction>,
    /// Each thread's decision.
    pub decisions: Vec<(ClientId, Value)>,
    /// CAS operations performed by the backup phase.
    pub cas_count: usize,
}

impl ShmemOutcome {
    /// Whether all decided values agree.
    pub fn agreement(&self) -> bool {
        self.decisions.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// Verifies the recorded trace through the shared checker engine: the
    /// RCons fast phase `(1, 2)`, the CASCons backup phase `(2, 3)`, and
    /// plain linearizability of the object projection, with aggregated
    /// [search statistics](slin_core::engine::SearchStats).
    pub fn verify(&self) -> PhaseChainVerification {
        verify_phase_chain(&Consensus, ConsensusInit::new(), &self.trace, 1, 2)
    }
}

/// Runs the composed `RCons + CASCons` object under the given workload.
///
/// # Example
///
/// ```
/// use slin_shmem::harness::{run_concurrent, Workload};
/// let out = run_concurrent(&Workload { threads: 3, sequential: true });
/// assert!(out.agreement());
/// assert_eq!(out.cas_count, 0); // registers only, without contention
/// ```
pub fn run_concurrent(workload: &Workload) -> ShmemOutcome {
    let obj = Arc::new(if workload.sequential {
        SpeculativeConsensus::new()
    } else {
        SpeculativeConsensus::chaotic()
    });
    let mut decisions: Vec<(ClientId, Value)> = Vec::new();
    if workload.sequential {
        for c in 1..=workload.threads {
            let v = obj.propose(c, Value::new(c as u64 * 10));
            decisions.push((ClientId::new(c), v));
        }
    } else {
        let results: Vec<(u32, Value)> = std::thread::scope(|s| {
            let hs: Vec<_> = (1..=workload.threads)
                .map(|c| {
                    let obj = Arc::clone(&obj);
                    s.spawn(move || (c, obj.propose(c, Value::new(c as u64 * 10))))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (c, v) in results {
            decisions.push((ClientId::new(c), v));
        }
    }
    let cas_count = obj.cas_count();
    let obj = Arc::try_unwrap(obj).expect("all threads joined");
    ShmemOutcome {
        trace: obj.into_trace(),
        decisions,
        cas_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_core::invariants;

    #[test]
    fn sequential_runs_never_cas() {
        for threads in 1..=6 {
            let out = run_concurrent(&Workload {
                threads,
                sequential: true,
            });
            assert!(out.agreement());
            assert_eq!(out.cas_count, 0, "threads={threads}");
            assert_eq!(out.decisions[0].1, Value::new(10));
        }
    }

    #[test]
    fn concurrent_runs_agree_and_are_linearizable() {
        for round in 0..100 {
            let out = run_concurrent(&Workload {
                threads: 4,
                sequential: false,
            });
            assert!(out.agreement(), "round {round}");
            assert!(
                invariants::consensus_linearizable(&out.trace),
                "round {round}: {:?}",
                out.trace
            );
        }
    }

    #[test]
    fn engine_verification_accepts_shmem_runs() {
        for threads in [1u32, 3] {
            let seq = run_concurrent(&Workload::sequential(threads)).verify();
            assert!(seq.all_ok(), "sequential threads={threads}: {seq:?}");
            let conc = run_concurrent(&Workload::concurrent(threads)).verify();
            assert!(conc.all_ok(), "concurrent threads={threads}: {conc:?}");
            assert_eq!(conc.phases.len(), 2);
        }
    }
}
