//! CAS-based consensus — `CASCons` (paper Figure 3).
//!
//! The second speculation phase: a single compare-and-swap on the shared
//! decision register `D`. Switch calls from the register phase are treated
//! as proposals; plain `propose` calls may only happen after the consensus
//! has been won and simply read `D`.
//!
//! The phase counts its CAS invocations so the benchmarks can verify the
//! headline property of the composition: *zero* CAS operations in
//! contention-free executions.

use slin_adt::consensus::Value;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The CAS-based speculation phase (Figure 3).
///
/// # Example
///
/// ```
/// use slin_shmem::CasCons;
/// use slin_adt::Value;
/// let c = CasCons::new();
/// assert_eq!(c.switch_to(Value::new(3)), Value::new(3)); // wins the CAS
/// assert_eq!(c.switch_to(Value::new(8)), Value::new(3)); // loses: adopts
/// assert_eq!(c.cas_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct CasCons {
    /// Shared register `D` (0 = ⊥).
    d: AtomicU64,
    cas_count: AtomicUsize,
}

impl CasCons {
    /// Creates a fresh phase.
    pub fn new() -> Self {
        CasCons::default()
    }

    /// `switch-to-CASCons(val)`: `CAS(D, ⊥, val)` and return the decided
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if `val` is the reserved `⊥` encoding (0).
    pub fn switch_to(&self, val: Value) -> Value {
        assert!(val.get() != 0, "value 0 encodes ⊥");
        self.cas_count.fetch_add(1, Ordering::Relaxed);
        match self
            .d
            .compare_exchange(0, val.get(), Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => val,
            Err(current) => Value::new(current),
        }
    }

    /// `propose(val)`: only called after the consensus has been won — just
    /// returns `D` (Figure 3, line 7).
    ///
    /// # Panics
    ///
    /// Panics if called before any [`CasCons::switch_to`] (the algorithm's
    /// precondition is violated).
    pub fn propose(&self, _val: Value) -> Value {
        let d = self.d.load(Ordering::SeqCst);
        assert!(d != 0, "propose before any switch: precondition violated");
        Value::new(d)
    }

    /// Number of CAS operations executed so far.
    pub fn cas_count(&self) -> usize {
        self.cas_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_switch_wins() {
        let c = CasCons::new();
        assert_eq!(c.switch_to(Value::new(5)), Value::new(5));
        assert_eq!(c.switch_to(Value::new(9)), Value::new(5));
    }

    #[test]
    fn propose_reads_decision() {
        let c = CasCons::new();
        c.switch_to(Value::new(5));
        assert_eq!(c.propose(Value::new(7)), Value::new(5));
    }

    #[test]
    #[should_panic(expected = "precondition")]
    fn propose_before_switch_panics() {
        CasCons::new().propose(Value::new(7));
    }

    #[test]
    fn concurrent_switches_agree() {
        for _ in 0..200 {
            let c = Arc::new(CasCons::new());
            let decided: Vec<Value> = std::thread::scope(|s| {
                let hs: Vec<_> = (1..=4u64)
                    .map(|k| {
                        let c = Arc::clone(&c);
                        s.spawn(move || c.switch_to(Value::new(k)))
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decided:?}");
            // The agreed value is one of the submitted switch values (I5).
            assert!((1..=4).contains(&decided[0].get()));
        }
    }

    #[test]
    fn cas_count_tracks_invocations() {
        let c = CasCons::new();
        assert_eq!(c.cas_count(), 0);
        c.switch_to(Value::new(1));
        c.switch_to(Value::new(2));
        assert_eq!(c.cas_count(), 2);
        c.propose(Value::new(3));
        assert_eq!(c.cas_count(), 2);
    }
}
