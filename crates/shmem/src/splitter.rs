//! Lamport's wait-free splitter (paper Figure 2, `splitter()`; citation
//! \[19\]).
//!
//! The splitter guarantees that **at most one** process returns `true`, and
//! that in the *absence of contention* exactly one process returns `true`.
//! It needs only two registers: `X` (last arriving process) and `Y` (door).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// A one-shot wait-free splitter over two shared registers.
///
/// # Example
///
/// ```
/// use slin_shmem::Splitter;
/// let s = Splitter::new();
/// assert!(s.split(1));     // alone: wins
/// assert!(!s.split(2));    // late arrival: loses
/// ```
#[derive(Debug, Default)]
pub struct Splitter {
    /// `X`: the identifier of the most recent arriver (0 = unset).
    x: AtomicU32,
    /// `Y`: the door, closed by the first process past the first read.
    y: AtomicBool,
    chaotic: bool,
}

impl Splitter {
    /// Creates an open splitter.
    pub fn new() -> Self {
        Splitter {
            x: AtomicU32::new(0),
            y: AtomicBool::new(false),
            chaotic: false,
        }
    }

    /// Creates a splitter that yields the scheduler between shared
    /// accesses, forcing diverse interleavings even on a single CPU.
    pub fn chaotic() -> Self {
        Splitter {
            chaotic: true,
            ..Splitter::new()
        }
    }

    fn pace(&self) {
        if self.chaotic {
            std::thread::yield_now();
        }
    }

    /// Runs the splitter for the calling process `c` (non-zero).
    ///
    /// Returns `true` for at most one caller; exactly one when callers do
    /// not overlap.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` (the sentinel for "unset").
    pub fn split(&self, c: u32) -> bool {
        assert!(c != 0, "process identifiers must be non-zero");
        // X ← c
        self.x.store(c, Ordering::SeqCst);
        self.pace();
        // if Y then return false
        if self.y.load(Ordering::SeqCst) {
            return false;
        }
        self.pace();
        // Y ← true
        self.y.store(true, Ordering::SeqCst);
        self.pace();
        // return X = c
        self.x.load(Ordering::SeqCst) == c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn solo_caller_wins() {
        let s = Splitter::new();
        assert!(s.split(7));
    }

    #[test]
    fn second_sequential_caller_loses() {
        let s = Splitter::new();
        assert!(s.split(1));
        assert!(!s.split(2));
        assert!(!s.split(3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_id_rejected() {
        Splitter::new().split(0);
    }

    #[test]
    fn at_most_one_winner_under_contention() {
        for _ in 0..200 {
            let s = Arc::new(Splitter::chaotic());
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                for c in 1..=4u32 {
                    let s = Arc::clone(&s);
                    let winners = Arc::clone(&winners);
                    scope.spawn(move || {
                        if s.split(c) {
                            winners.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            assert!(winners.load(Ordering::SeqCst) <= 1);
        }
    }
}
