//! A concurrent trace recorder for the shared-memory algorithms.
//!
//! Threads append object-interface events as they cross them: an invocation
//! is recorded *before* the operation's first shared access and a response
//! *after* its last, so the recorded real-time order is a sub-order of the
//! actual one — if the recorded trace is linearizable, so was the actual
//! execution.

use crate::ConsAction;
use parking_lot::Mutex;
use slin_adt::consensus::{ConsInput, ConsOutput, Value};
use slin_trace::{Action, ClientId, PhaseId, Trace};

/// A lock-protected global event log.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<ConsAction>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records `inv(c, phase, p(v))`.
    pub fn invoke(&self, c: ClientId, phase: PhaseId, v: Value) {
        self.events
            .lock()
            .push(Action::invoke(c, phase, ConsInput::propose(v)));
    }

    /// Records `res(c, phase, p(input), d(decided))`.
    pub fn respond(&self, c: ClientId, phase: PhaseId, input: Value, decided: Value) {
        self.events.lock().push(Action::respond(
            c,
            phase,
            ConsInput::propose(input),
            ConsOutput::decide(decided),
        ));
    }

    /// Records `swi(c, phase, p(input), v)`.
    pub fn switch(&self, c: ClientId, phase: PhaseId, input: Value, value: Value) {
        self.events
            .lock()
            .push(Action::switch(c, phase, ConsInput::propose(input), value));
    }

    /// Extracts the recorded trace.
    pub fn into_trace(self) -> Trace<ConsAction> {
        Trace::from_actions(self.events.into_inner())
    }

    /// Clones the events recorded so far.
    pub fn snapshot(&self) -> Trace<ConsAction> {
        Trace::from_actions(self.events.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_emission_order() {
        let r = TraceRecorder::new();
        let c = ClientId::new(1);
        r.invoke(c, PhaseId::new(1), Value::new(5));
        r.respond(c, PhaseId::new(1), Value::new(5), Value::new(5));
        let t = r.into_trace();
        assert_eq!(t.len(), 2);
        assert!(t[0].is_invoke() && t[1].is_respond());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = TraceRecorder::new();
        r.invoke(ClientId::new(1), PhaseId::new(1), Value::new(5));
        assert_eq!(r.snapshot().len(), 1);
        r.switch(
            ClientId::new(1),
            PhaseId::new(2),
            Value::new(5),
            Value::new(5),
        );
        assert_eq!(r.snapshot().len(), 2);
    }
}
