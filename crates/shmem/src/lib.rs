//! Shared-memory speculative consensus (paper Section 2.5, Figures 2–3).
//!
//! Wait-free consensus cannot be built from registers alone (Herlihy), but
//! in *contention-free* executions a splitter-based algorithm using only
//! registers solves it. The paper composes:
//!
//! * [`rcons::RCons`] (Figure 2) — register-based consensus built on
//!   Lamport's splitter: decides when alone, switches to the next phase on
//!   contention;
//! * [`cascons::CasCons`] (Figure 3) — a straightforward CAS-based
//!   consensus that treats switch values as proposals;
//! * [`composed::SpeculativeConsensus`] — the composition, which uses only
//!   registers in contention-free executions yet is always correct.
//!
//! All algorithms run on real threads over `std::sync::atomic` with
//! sequentially-consistent ordering, and record their object-interface
//! events into a global trace checked by the `slin-core` checkers.
//!
//! Values are non-zero `u64`s (`0` encodes the paper's `⊥`).
//!
//! # Example
//!
//! ```
//! use slin_shmem::harness::{run_concurrent, Workload};
//!
//! let outcome = run_concurrent(&Workload { threads: 4, sequential: false });
//! assert!(outcome.agreement());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascons;
pub mod composed;
pub mod harness;
pub mod rcons;
pub mod recorder;
pub mod splitter;

pub use cascons::CasCons;
pub use composed::SpeculativeConsensus;
pub use rcons::{RCons, RconsOutcome};
pub use splitter::Splitter;

use slin_adt::consensus::{ConsInput, ConsOutput, Value};
use slin_trace::Action;

/// The object-interface action type recorded by the shared-memory
/// algorithms.
pub type ConsAction = Action<ConsInput, ConsOutput, Value>;
