//! Register-based speculative consensus — `RCons` (paper Figure 2).
//!
//! Uses only read/write registers (no CAS): a shared decision register `D`,
//! a value register `V`, a contention flag, and a [`Splitter`]. In a
//! contention-free execution the splitter winner writes `V`, sees no
//! contention, publishes `D` and decides; later (non-overlapping) callers
//! read `D` directly. Under contention the algorithm *switches*: it returns
//! [`RconsOutcome::Switch`] with the value the next phase should adopt.

use crate::splitter::Splitter;
use slin_adt::consensus::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The result of an `RCons` proposal: the phase either decides or aborts
/// with a switch value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RconsOutcome {
    /// The register phase decided the value.
    Decide(Value),
    /// The register phase aborts; the caller must switch to the next phase
    /// with this value.
    Switch(Value),
}

/// The register-based speculation phase (Figure 2).
///
/// # Example
///
/// ```
/// use slin_shmem::{RCons, RconsOutcome};
/// use slin_adt::Value;
/// let r = RCons::new();
/// // A solo proposer decides its own value using registers only.
/// assert_eq!(r.propose(1, Value::new(9)), RconsOutcome::Decide(Value::new(9)));
/// // A later proposer reads the published decision.
/// assert_eq!(r.propose(2, Value::new(5)), RconsOutcome::Decide(Value::new(9)));
/// ```
#[derive(Debug, Default)]
pub struct RCons {
    /// Shared register `V` (0 = ⊥).
    v: AtomicU64,
    /// Shared register `D` (0 = ⊥): the published decision.
    d: AtomicU64,
    /// Shared register `Contention`.
    contention: AtomicBool,
    splitter: Splitter,
    chaotic: bool,
}

impl RCons {
    /// Creates a fresh phase.
    pub fn new() -> Self {
        RCons::default()
    }

    /// Creates a phase that yields the scheduler between shared accesses,
    /// forcing diverse interleavings even on a single CPU.
    pub fn chaotic() -> Self {
        RCons {
            splitter: Splitter::chaotic(),
            chaotic: true,
            ..RCons::new()
        }
    }

    fn pace(&self) {
        if self.chaotic {
            std::thread::yield_now();
        }
    }

    /// `propose(val)` for caller `c` (Figure 2, lines 6–25).
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `val` is the reserved `⊥` encoding (0).
    pub fn propose(&self, c: u32, val: Value) -> RconsOutcome {
        assert!(val.get() != 0, "value 0 encodes ⊥");
        let mut v = val;
        // if D ≠ ⊥ then return D
        let d = self.d.load(Ordering::SeqCst);
        if d != 0 {
            return RconsOutcome::Decide(Value::new(d));
        }
        self.pace();
        if self.splitter.split(c) {
            self.pace();
            // V ← v
            self.v.store(v.get(), Ordering::SeqCst);
            self.pace();
            // if ¬Contention then D ← v; return v
            if !self.contention.load(Ordering::SeqCst) {
                self.pace();
                self.d.store(v.get(), Ordering::SeqCst);
                RconsOutcome::Decide(v)
            } else {
                RconsOutcome::Switch(v)
            }
        } else {
            self.pace();
            // Contention ← true
            self.contention.store(true, Ordering::SeqCst);
            self.pace();
            // if V ≠ ⊥ then v ← V
            let seen = self.v.load(Ordering::SeqCst);
            if seen != 0 {
                v = Value::new(seen);
            }
            RconsOutcome::Switch(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_proposer_decides_own_value() {
        let r = RCons::new();
        assert_eq!(
            r.propose(1, Value::new(4)),
            RconsOutcome::Decide(Value::new(4))
        );
    }

    #[test]
    fn sequential_proposers_read_published_decision() {
        let r = RCons::new();
        r.propose(1, Value::new(4));
        assert_eq!(
            r.propose(2, Value::new(8)),
            RconsOutcome::Decide(Value::new(4))
        );
        assert_eq!(
            r.propose(3, Value::new(9)),
            RconsOutcome::Decide(Value::new(4))
        );
    }

    #[test]
    #[should_panic(expected = "⊥")]
    fn zero_value_rejected() {
        RCons::new().propose(1, Value::new(0));
    }

    #[test]
    fn losing_splitter_switches() {
        let r = RCons::new();
        // Simulate contention: thread 2 takes the splitter path first but
        // has not published D (we interleave by hand using two proposers
        // whose splitter outcome differs).
        assert!(matches!(
            r.propose(1, Value::new(4)),
            RconsOutcome::Decide(_)
        ));
        // After a decision, everyone reads D — so build a contended run on
        // threads (released simultaneously by a barrier) to see switches.
        let mut saw_switch = false;
        for _ in 0..500 {
            let r = Arc::new(RCons::chaotic());
            let barrier = Arc::new(std::sync::Barrier::new(3));
            let outcomes: Vec<RconsOutcome> = std::thread::scope(|s| {
                let handles: Vec<_> = (1..=3u32)
                    .map(|c| {
                        let r = Arc::clone(&r);
                        let barrier = Arc::clone(&barrier);
                        s.spawn(move || {
                            barrier.wait();
                            r.propose(c, Value::new(c as u64))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            saw_switch |= outcomes
                .iter()
                .any(|o| matches!(o, RconsOutcome::Switch(_)));
            if saw_switch {
                break;
            }
        }
        assert!(saw_switch, "contention should force some switches");
    }

    #[test]
    fn paper_invariants_on_concurrent_outcomes() {
        // I1/I2 at the outcome level: if someone decided v, every other
        // outcome (decide or switch) carries v.
        for round in 0..200 {
            let r = Arc::new(RCons::chaotic());
            let outcomes: Vec<(u32, RconsOutcome)> = std::thread::scope(|s| {
                let handles: Vec<_> = (1..=4u32)
                    .map(|c| {
                        let r = Arc::clone(&r);
                        s.spawn(move || (c, r.propose(c, Value::new(c as u64 * 10))))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let decided: Vec<Value> = outcomes
                .iter()
                .filter_map(|(_, o)| match o {
                    RconsOutcome::Decide(v) => Some(*v),
                    _ => None,
                })
                .collect();
            if let Some(&v) = decided.first() {
                for (c, o) in &outcomes {
                    match o {
                        RconsOutcome::Decide(d) => {
                            assert_eq!(*d, v, "round {round}, client {c}: split decision")
                        }
                        RconsOutcome::Switch(sv) => {
                            assert_eq!(*sv, v, "round {round}, client {c}: I1 violated")
                        }
                    }
                }
            }
        }
    }
}
