//! The composed shared-memory object: `RCons` + `CASCons`
//! (paper Section 2.5).
//!
//! A proposal first runs the register phase; on abort the client records a
//! switch action and calls into the CAS phase with the switch value —
//! exactly the composition pattern of the framework, with the switch value
//! as the only information crossing the phase boundary.
//!
//! The composition uses **only registers** in contention-free executions
//! (zero CAS operations) while remaining a correct wait-free consensus under
//! arbitrary concurrency — the motivating question of Section 2.5.

use crate::cascons::CasCons;
use crate::rcons::{RCons, RconsOutcome};
use crate::recorder::TraceRecorder;
use slin_adt::consensus::Value;
use slin_trace::{ClientId, PhaseId};

/// The speculative shared-memory consensus object.
///
/// # Example
///
/// ```
/// use slin_shmem::SpeculativeConsensus;
/// use slin_adt::Value;
/// let obj = SpeculativeConsensus::new();
/// assert_eq!(obj.propose(1, Value::new(6)), Value::new(6));
/// assert_eq!(obj.propose(2, Value::new(9)), Value::new(6));
/// // Contention-free: the CAS phase was never exercised.
/// assert_eq!(obj.cas_count(), 0);
/// ```
#[derive(Debug, Default)]
pub struct SpeculativeConsensus {
    rcons: RCons,
    cascons: CasCons,
    recorder: TraceRecorder,
}

impl SpeculativeConsensus {
    /// Creates a fresh object.
    pub fn new() -> Self {
        SpeculativeConsensus::default()
    }

    /// Creates an object whose register phase yields the scheduler between
    /// shared accesses (for interleaving exploration on few cores).
    pub fn chaotic() -> Self {
        SpeculativeConsensus {
            rcons: RCons::chaotic(),
            ..SpeculativeConsensus::default()
        }
    }

    /// Proposes `val` on behalf of client `c`; returns the decided value.
    ///
    /// Records the invocation, any switch, and the response in the object's
    /// trace.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `val` is the reserved `⊥` encoding (0).
    pub fn propose(&self, c: u32, val: Value) -> Value {
        let client = ClientId::new(c);
        self.recorder.invoke(client, PhaseId::new(1), val);
        match self.rcons.propose(c, val) {
            RconsOutcome::Decide(v) => {
                self.recorder.respond(client, PhaseId::new(1), val, v);
                v
            }
            RconsOutcome::Switch(sv) => {
                self.recorder.switch(client, PhaseId::new(2), val, sv);
                let v = self.cascons.switch_to(sv);
                self.recorder.respond(client, PhaseId::new(2), val, v);
                v
            }
        }
    }

    /// Number of CAS operations executed by the backup phase.
    pub fn cas_count(&self) -> usize {
        self.cascons.cas_count()
    }

    /// Extracts the recorded object-interface trace.
    pub fn into_trace(self) -> slin_trace::Trace<crate::ConsAction> {
        self.recorder.into_trace()
    }

    /// The events recorded so far.
    pub fn trace_snapshot(&self) -> slin_trace::Trace<crate::ConsAction> {
        self.recorder.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slin_core::invariants;
    use std::sync::Arc;

    #[test]
    fn sequential_proposals_use_registers_only() {
        let obj = SpeculativeConsensus::new();
        assert_eq!(obj.propose(1, Value::new(3)), Value::new(3));
        assert_eq!(obj.propose(2, Value::new(7)), Value::new(3));
        assert_eq!(obj.propose(3, Value::new(9)), Value::new(3));
        assert_eq!(obj.cas_count(), 0);
        let t = obj.into_trace();
        assert!(invariants::consensus_linearizable(&t));
        assert!(t.iter().all(|a| !a.is_switch()));
    }

    #[test]
    fn concurrent_proposals_agree_and_record_linearizable_traces() {
        for _ in 0..200 {
            let obj = Arc::new(SpeculativeConsensus::chaotic());
            let decided: Vec<Value> = std::thread::scope(|s| {
                let hs: Vec<_> = (1..=4u32)
                    .map(|c| {
                        let obj = Arc::clone(&obj);
                        s.spawn(move || obj.propose(c, Value::new(c as u64)))
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decided:?}");
            let obj = Arc::try_unwrap(obj).expect("all threads joined");
            let t = obj.into_trace();
            assert!(invariants::consensus_linearizable(&t), "{t:?}");
            assert!(invariants::i2(&t), "{t:?}");
            assert!(invariants::i3(&t), "{t:?}");
        }
    }

    #[test]
    fn decided_value_was_proposed() {
        for _ in 0..100 {
            let obj = Arc::new(SpeculativeConsensus::chaotic());
            let decided: Vec<Value> = std::thread::scope(|s| {
                let hs: Vec<_> = (1..=3u32)
                    .map(|c| {
                        let obj = Arc::clone(&obj);
                        s.spawn(move || obj.propose(c, Value::new(10 + c as u64)))
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert!((11..=13).contains(&decided[0].get()));
        }
    }
}
