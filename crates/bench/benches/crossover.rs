//! B2 — where speculation stops paying off (the paper's Zyzzyva
//! discussion, Section 1): as faults (message loss) or contention grow, the
//! fast path aborts more often and the composed protocol degrades toward —
//! and past — the non-speculative baseline.
//!
//! Criterion measures *simulated time* (1 message delay = 1 µs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, PlottingBackend};
use slin_bench::{contention_rows, crossover_rows, render_table};
use slin_consensus::harness::{run_scenario, Scenario};
use std::time::Duration;

fn print_tables() {
    let rows = crossover_rows(&[0, 5, 10, 20, 30, 40], 20);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.x),
                format!("{:.2}", r.composed_mean),
                format!("{:.2}", r.paxos_mean),
                format!("{:.0}%", r.fallback_rate * 100.0),
            ]
        })
        .collect();
    println!("\nB2 — mean decision latency vs message loss (3 servers, 20 seeds)");
    println!(
        "{}",
        render_table(&["loss", "quorum+backup", "pure paxos", "fallback"], &table)
    );

    let rows = contention_rows(&[1, 2, 3, 4], 15);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.x.to_string(),
                format!("{:.2}", r.composed_mean),
                format!("{:.2}", r.paxos_mean),
                format!("{:.0}%", r.fallback_rate * 100.0),
            ]
        })
        .collect();
    println!("\nB2b — mean decision latency vs contending clients (3 servers, 15 seeds)");
    println!(
        "{}",
        render_table(
            &["clients", "quorum+backup", "pure paxos", "fallback"],
            &table
        )
    );
}

fn bench_crossover(c: &mut Criterion) {
    print_tables();
    let mut group = c.benchmark_group("latency_vs_loss_message_delays");
    for &pct in &[0u64, 10, 20, 30] {
        group.bench_with_input(BenchmarkId::new("quorum_backup", pct), &pct, |b, &pct| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for s in 0..iters {
                    let out = run_scenario(
                        &Scenario::fault_free(3, &[(7, 0)]).with_loss(pct as f64 / 100.0, s),
                    );
                    total += Duration::from_micros(out.latencies[0].1.unwrap_or(out.sim_time));
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("pure_paxos", pct), &pct, |b, &pct| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for s in 0..iters {
                    let out = run_scenario(
                        &Scenario::pure_paxos(3, &[(7, 0)]).with_loss(pct as f64 / 100.0, s),
                    );
                    total += Duration::from_micros(out.latencies[0].1.unwrap_or(out.sim_time));
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(PlottingBackend::None).warm_up_time(Duration::from_millis(400)).sample_size(10).measurement_time(Duration::from_secs(2));
    targets = bench_crossover
}
criterion_main!(benches);
