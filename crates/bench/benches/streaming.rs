//! B6 — the online monitor's streaming load table.
//!
//! `cargo bench -p slin-bench --bench streaming` drives bounded-window
//! `LinMonitor`s over multi-key KV event streams (keys × skew, plus a
//! hot-key control) and prints sustained events/sec, p99 ingest latency,
//! and the deterministic fallback/GC columns.

use slin_bench::{
    hostile_rows, multitenant_rows, obs_rows, render_table, streaming_rows, HOSTILE_HEADER,
    MULTITENANT_HEADER, OBS_HEADER, STREAMING_HEADER, STREAMING_SEEDS,
};

fn main() {
    let rows: Vec<Vec<String>> = streaming_rows(&STREAMING_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("\nB6 — online monitor streaming load (events/sec, p99 ingest latency)");
    println!("{}", render_table(&STREAMING_HEADER, &rows));
    let rows: Vec<Vec<String>> = hostile_rows(&STREAMING_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("B6h — epoch-GC monitor on hostile never-quiescent streams (vs window size)");
    println!("{}", render_table(&HOSTILE_HEADER, &rows));
    let rows: Vec<Vec<String>> = multitenant_rows(&STREAMING_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("B8 — multi-tenant daemon pipeline under Zipf tenant skew");
    println!("{}", render_table(&MULTITENANT_HEADER, &rows));
    let rows: Vec<Vec<String>> = obs_rows(&STREAMING_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("B9 — observer overhead (noop vs instrumented) and witness-archive bound");
    println!("{}", render_table(&OBS_HEADER, &rows));
}
