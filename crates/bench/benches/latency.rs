//! B1 — fast-path versus backup decision latency (paper Section 2.1).
//!
//! The paper claims Quorum decides in **2 message delays** when executions
//! are fault-free and contention-free, while Paxos needs 3+ (our
//! client-driven Paxos takes 4: two round trips). Criterion's measurement
//! here is *simulated time* (unit message delay = 1 µs), so the reported
//! numbers are message delays, not host-machine noise; the regenerated
//! table is printed once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, PlottingBackend};
use slin_bench::{latency_rows, render_table};
use slin_consensus::harness::{run_scenario, Scenario};
use std::time::Duration;

fn print_table() {
    let rows = latency_rows(&[3, 5, 7, 9]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.servers.to_string(),
                format!("{:?}", r.composed.unwrap()),
                format!("{:?}", r.paxos.unwrap()),
                r.composed_msgs.to_string(),
                r.paxos_msgs.to_string(),
            ]
        })
        .collect();
    println!("\nB1 — decision latency (message delays), fault-free single client");
    println!(
        "{}",
        render_table(
            &[
                "servers",
                "quorum+backup",
                "pure paxos",
                "msgs(fast)",
                "msgs(paxos)"
            ],
            &table
        )
    );
}

fn bench_latency(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("decision_latency_message_delays");
    for &servers in &[3usize, 5, 7, 9] {
        group.bench_with_input(
            BenchmarkId::new("quorum_backup", servers),
            &servers,
            |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let out = run_scenario(&Scenario::fault_free(n, &[(5, 0)]));
                        total += Duration::from_micros(out.latencies[0].1.unwrap_or(0));
                    }
                    total
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pure_paxos", servers),
            &servers,
            |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let out = run_scenario(&Scenario::pure_paxos(n, &[(5, 0)]));
                        total += Duration::from_micros(out.latencies[0].1.unwrap_or(0));
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(PlottingBackend::None).warm_up_time(Duration::from_millis(400)).sample_size(10).measurement_time(Duration::from_secs(2));
    targets = bench_latency
}
criterion_main!(benches);
