//! B4b — modular phase chaining (paper Section 1).
//!
//! Ad-hoc composition of n speculation phases needs O(n²) switching cases;
//! the framework's chained composition is linear: adding a phase never
//! touches the existing ones. This bench measures what chaining costs at
//! run time — the fault-free fast path must stay at 2 message delays no
//! matter how long the chain, while contended runs pay one extra fast-phase
//! round per hop until the backup decides.
//!
//! Criterion measures simulated time (1 message delay = 1 µs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, PlottingBackend};
use slin_bench::{phase_chain_rows, render_table};
use slin_consensus::harness::{run_scenario, Scenario};
use std::time::Duration;

fn print_table() {
    let rows = phase_chain_rows(&[1, 2, 3, 4], 12);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fast_phases.to_string(),
                format!("{:?}", r.fault_free_latency.unwrap()),
                format!("{:.2}", r.latency_mean),
                format!("{:.1}", r.messages_mean),
            ]
        })
        .collect();
    println!("\nB4b — chained fast phases (3 servers; contended = 2 clients, 12 seeds)");
    println!(
        "{}",
        render_table(
            &[
                "fast phases",
                "fault-free latency",
                "contended latency",
                "msgs"
            ],
            &table
        )
    );
}

fn bench_phases(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("contended_latency_vs_chain_length");
    for &fast in &[1u32, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(fast), &fast, |b, &fast| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for s in 0..iters {
                    let out =
                        run_scenario(&Scenario::contended(3, &[1, 2], s).with_fast_phases(fast));
                    let worst = out
                        .latencies
                        .iter()
                        .filter_map(|(_, l)| *l)
                        .max()
                        .unwrap_or(out.sim_time);
                    total += Duration::from_micros(worst);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(PlottingBackend::None).warm_up_time(Duration::from_millis(400)).sample_size(10).measurement_time(Duration::from_secs(2));
    targets = bench_phases
}
criterion_main!(benches);
