//! B4 — practicality of the decision procedures.
//!
//! The paper argues its framework enables *scalable* reasoning; the
//! executable counterpart is checker throughput. We measure the new
//! definition's chain search, the classical Wing–Gong search, the
//! consensus-specialized linear-time test, and the speculative checker,
//! as the trace length grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, PlottingBackend};
use rand::Rng;
use slin_adt::{ConsInput, Consensus};
use slin_bench::{
    checker_stats_rows, partition_speedup_rows, render_table, CHECKER_STATS_HEADER,
    PARTITION_HEADER, PARTITION_SEEDS,
};
use slin_consensus::harness::{run_scenario, Scenario};
use slin_core::classical::ClassicalChecker;
use slin_core::compose::project_phase;
use slin_core::gen::{random_linearizable_trace, GenConfig};
use slin_core::initrel::ConsensusInit;
use slin_core::invariants;
use slin_core::lin::LinChecker;
use slin_core::slin::SlinChecker;
use slin_trace::PhaseId;
use std::time::Duration;

fn print_stats_table() {
    let rows: Vec<Vec<String>> = checker_stats_rows(&[0, 1, 7, 13])
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("\nB4c — shared-engine search statistics on protocol traces");
    println!("{}", render_table(&CHECKER_STATS_HEADER, &rows));
    let rows: Vec<Vec<String>> = partition_speedup_rows(&PARTITION_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("B5 — partitioned vs monolithic checking (node counts)");
    println!("{}", render_table(&PARTITION_HEADER, &rows));
}

fn bench_checkers(c: &mut Criterion) {
    print_stats_table();
    let mut group = c.benchmark_group("lin_checkers_vs_trace_length");
    for &steps in &[9usize, 12, 15, 18, 21] {
        let cfg = GenConfig {
            clients: 3,
            steps,
            seed: 42,
        };
        let t = random_linearizable_trace(&Consensus, cfg, |rng| {
            ConsInput::propose(rng.gen_range(1..4u64))
        });
        group.bench_with_input(BenchmarkId::new("new_definition", steps), &t, |b, t| {
            b.iter(|| LinChecker::owned(Consensus).check(t).is_ok())
        });
        group.bench_with_input(BenchmarkId::new("classical", steps), &t, |b, t| {
            b.iter(|| ClassicalChecker::new(&Consensus).check(t).is_ok())
        });
        group.bench_with_input(BenchmarkId::new("specialized", steps), &t, |b, t| {
            b.iter(|| invariants::consensus_linearizable(t))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("slin_checker_on_phase_traces");
    for seed in [0u64, 7] {
        let out = run_scenario(&Scenario::contended(3, &[1, 2], seed));
        let t12 = project_phase::<Consensus, _>(&out.trace, PhaseId::new(1), PhaseId::new(2));
        let t23 = project_phase::<Consensus, _>(&out.trace, PhaseId::new(2), PhaseId::new(3));
        group.bench_with_input(BenchmarkId::new("first_phase", seed), &t12, |b, t| {
            let chk = SlinChecker::owned(
                Consensus,
                ConsensusInit::new(),
                PhaseId::new(1),
                PhaseId::new(2),
            );
            b.iter(|| chk.check(t).is_ok())
        });
        group.bench_with_input(BenchmarkId::new("second_phase", seed), &t23, |b, t| {
            let chk = SlinChecker::owned(
                Consensus,
                ConsensusInit::new(),
                PhaseId::new(2),
                PhaseId::new(3),
            );
            b.iter(|| chk.check(t).is_ok())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(PlottingBackend::None).warm_up_time(Duration::from_millis(400)).sample_size(15).measurement_time(Duration::from_secs(3));
    targets = bench_checkers
}
criterion_main!(benches);
