//! The machine-readable bench pipeline.
//!
//! `cargo bench -p slin-bench --bench report -- --json` (or setting
//! `BENCH_OUT=<path>`) writes the full B-series report as JSON —
//! `BENCH_PR10.json` at the repository root by default — for CI to upload
//! as an artifact and diff against the committed baseline
//! (`ci/bench_threshold.py`). Without `--json`/`BENCH_OUT` it prints the
//! B5 partition-speedup and B10 phase-trace tables for humans.

use slin_bench::{bench_report_json, partition_speedup_rows, phase_partition_rows, render_table};
use slin_bench::{PARTITION_HEADER, PARTITION_SEEDS, PHASE_PARTITION_HEADER, PHASE_SEEDS};

/// `BENCH_PR10.json` at the repository root, resolved relative to this
/// crate so the artifact lands in the same place no matter where cargo
/// runs the bench from.
fn default_out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json")
}

fn main() {
    let json_flag = std::env::args().any(|a| a == "--json");
    let out_env = std::env::var_os("BENCH_OUT");
    if json_flag || out_env.is_some() {
        let path = out_env
            .map(std::path::PathBuf::from)
            .unwrap_or_else(default_out_path);
        let report = bench_report_json();
        std::fs::write(&path, report)
            .unwrap_or_else(|e| panic!("failed to write bench report to {}: {e}", path.display()));
        println!("wrote {}", path.display());
        return;
    }
    let rows: Vec<Vec<String>> = partition_speedup_rows(&PARTITION_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("\nB5 — partitioned vs monolithic checking (node counts)");
    println!("{}", render_table(&PARTITION_HEADER, &rows));
    let rows: Vec<Vec<String>> = phase_partition_rows(&PHASE_SEEDS)
        .iter()
        .map(|r| r.cells())
        .collect();
    println!("\nB10 — switch-certified keyed checking on phase traces (node counts)");
    println!("{}", render_table(&PHASE_PARTITION_HEADER, &rows));
    println!("(--json or BENCH_OUT=<path> writes the machine-readable report)");
}
