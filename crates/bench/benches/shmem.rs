//! B3 — registers versus CAS (paper Section 2.5).
//!
//! The motivation for RCons: "consensus can be implemented … using the
//! wait-free compare-and-swap (CAS) instruction, but this instruction may
//! be slower than an atomic register access". We measure, on this host:
//! the raw cost of the register-only fast path vs the CAS path, and the
//! end-to-end cost of the composed object on sequential (contention-free)
//! versus concurrent workloads — plus the headline invariant: **zero CAS
//! operations without contention**.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, PlottingBackend};
use slin_adt::Value;
use slin_bench::render_table;
use slin_shmem::harness::{run_concurrent, Workload};
use slin_shmem::{CasCons, RCons, SpeculativeConsensus};
use std::time::Duration;

fn print_cas_table() {
    let mut rows = Vec::new();
    for threads in [1u32, 2, 4, 8] {
        let seq = run_concurrent(&Workload::sequential(threads));
        let conc = run_concurrent(&Workload::concurrent(threads));
        rows.push(vec![
            threads.to_string(),
            seq.cas_count.to_string(),
            conc.cas_count.to_string(),
        ]);
    }
    println!("\nB3 — CAS operations per run (composed RCons+CASCons)");
    println!(
        "{}",
        render_table(&["threads", "sequential", "concurrent"], &rows)
    );
}

fn bench_primitives(c: &mut Criterion) {
    print_cas_table();
    let mut group = c.benchmark_group("solo_propose");
    group.bench_function("rcons_register_path", |b| {
        b.iter_batched(
            RCons::new,
            |r| r.propose(1, Value::new(7)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("cascons_cas_path", |b| {
        b.iter_batched(
            CasCons::new,
            |c| c.switch_to(Value::new(7)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("composed_fast_path", |b| {
        b.iter_batched(
            SpeculativeConsensus::new,
            |o| o.propose(1, Value::new(7)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("workload");
    for &threads in &[1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sequential", threads),
            &threads,
            |b, &t| b.iter(|| run_concurrent(&Workload::sequential(t))),
        );
        group.bench_with_input(
            BenchmarkId::new("concurrent", threads),
            &threads,
            |b, &t| b.iter(|| run_concurrent(&Workload::concurrent(t))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(PlottingBackend::None).warm_up_time(Duration::from_millis(400)).sample_size(20).measurement_time(Duration::from_secs(3));
    targets = bench_primitives
}
criterion_main!(benches);
