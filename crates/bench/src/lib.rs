//! Benchmark harness reproducing the paper's performance claims.
//!
//! The paper has no empirical tables — its performance statements are
//! analytic (Quorum decides in 2 message delays versus Paxos's 3+;
//! registers beat CAS when there is no contention; modular phases avoid the
//! O(n²) ad-hoc switching cases). This crate turns each claim into a
//! measurable experiment:
//!
//! * [`latency_rows`] — **B1**: fast-path vs backup decision latency in
//!   message delays, across server counts;
//! * [`crossover_rows`] — **B2**: composed protocol vs pure Paxos as the
//!   message-loss rate grows (where speculation stops paying off);
//! * [`contention_rows`] — **B2b**: the same crossover under client
//!   contention;
//! * [`phase_chain_rows`] — **B4b**: latency and message cost of chaining
//!   extra fast phases;
//! * [`checker_stats_rows`] — **B4c**: the shared checker engine's
//!   [`SearchStats`] (nodes, memoisation, interpretation counts) over
//!   simulated runs — the practicality counterpart of the timing data;
//! * [`partition_speedup_rows`] — **B5**: node-count reduction of
//!   P-compositional (partitioned) checking over multi-key workloads,
//!   from partition-hostile (1 key, or full contention) to
//!   partition-friendly (8 spread keys);
//! * [`streaming_rows`] — **B6**: the online monitor's sustained ingest
//!   throughput (events/sec) and p99 per-event ingest latency across
//!   keys × skew grids — the live-traffic load driver;
//! * [`multitenant_rows`] — **B8**: the `slin-daemon` multi-tenant
//!   pipeline (wire decode → bounded queues → lane pool) under Zipf
//!   tenant skew — end-to-end events/sec, per-chunk p99, and the
//!   bounded-queue/shed health columns;
//! * [`obs_rows`] — **B9**: the observability tax (no-op vs fully
//!   instrumented monitors over identical pinned streams, min-of-reps)
//!   and the witness-archive memory/reconstruction columns;
//! * [`phase_partition_rows`] — **B10**: the certified keyed checking
//!   path on *phase traces* (init and abort switches included) —
//!   node-count reduction of switch-certified partitioned checking and
//!   keyed sharded streaming over the monolithic chain search, with the
//!   zero-fallback invariant the `slin-cert/v2` certificate buys;
//! * checker scaling data for **B4** lives in the `checkers` bench.
//!
//! Every function returns plain rows so the experiment tables can be
//! regenerated (`cargo bench -p slin-bench`) and asserted on in tests.
//! [`bench_report_json`] assembles every B-series table into one
//! machine-readable artifact (`cargo bench -p slin-bench --bench report --
//! --json` writes it to `BENCH_PR10.json` at the repo root) so CI can track
//! the numbers across commits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use json::Json;
use slin_adt::{KvInput, KvKeyPartitioner, KvStore, Set, SetElemPartitioner};
use slin_analysis::{certify_switch, AnalyzeConfig, SwitchCert};
use slin_consensus::harness::{run_scenario, verify_run, Scenario};
use slin_core::engine::SearchStats;
use slin_core::gen::{
    phase_trace_bounds, random_hostile_kv_trace, random_multikey_kv_trace,
    random_multikey_set_trace, random_phase_kv_trace, HostileConfig, MultiKeyConfig, PhaseConfig,
};
use slin_core::initrel::ExactInit;
use slin_core::lin::LinChecker;
use slin_core::session::{Checker, Strategy};
use slin_core::slin::SlinChecker;
use slin_daemon::{Daemon, DaemonConfig, LoadConfig, TenantPolicy};
use slin_monitor::{LinMonitor, MonitorConfig, MonitorStatus, Obs, SlinMonitor, StackObserver};
use slin_sim::Time;

/// One row of the fast-path latency table (B1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyRow {
    /// Number of servers.
    pub servers: usize,
    /// Fast-path (Quorum + Backup) decision latency, message delays.
    pub composed: Option<Time>,
    /// Pure-Paxos decision latency, message delays.
    pub paxos: Option<Time>,
    /// Messages sent by the composed protocol.
    pub composed_msgs: usize,
    /// Messages sent by pure Paxos.
    pub paxos_msgs: usize,
}

/// B1: single fault-free client, unit delays — the paper's headline
/// "2 message delays instead of 3+".
pub fn latency_rows(server_counts: &[usize]) -> Vec<LatencyRow> {
    server_counts
        .iter()
        .map(|&servers| {
            let fast = run_scenario(&Scenario::fault_free(servers, &[(5, 0)]));
            let slow = run_scenario(&Scenario::pure_paxos(servers, &[(5, 0)]));
            LatencyRow {
                servers,
                composed: fast.latencies[0].1,
                paxos: slow.latencies[0].1,
                composed_msgs: fast.messages,
                paxos_msgs: slow.messages,
            }
        })
        .collect()
}

/// One row of a crossover sweep (B2).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    /// The swept parameter (drop probability ×100, or client count).
    pub x: u64,
    /// Mean decision latency of the composed protocol over the seeds
    /// (undecided runs excluded).
    pub composed_mean: f64,
    /// Mean decision latency of pure Paxos.
    pub paxos_mean: f64,
    /// Fraction of composed-protocol clients that needed the backup.
    pub fallback_rate: f64,
}

fn mean_latency(outs: &[slin_consensus::harness::RunOutcome]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for o in outs {
        for (_, l) in &o.latencies {
            if let Some(l) = l {
                sum += *l as f64;
                n += 1;
            }
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

fn fallback_rate(outs: &[slin_consensus::harness::RunOutcome]) -> f64 {
    let mut switched = 0usize;
    let mut total = 0usize;
    for o in outs {
        total += o.latencies.len();
        switched += o
            .trace
            .iter()
            .filter(|a| a.is_switch() && a.phase().value() == 2)
            .count();
    }
    if total == 0 {
        0.0
    } else {
        switched as f64 / total as f64
    }
}

/// B2: decision latency as the message-drop probability grows, composed
/// protocol vs pure Paxos (3 servers, 1 client, `seeds` runs per point).
pub fn crossover_rows(drop_percents: &[u64], seeds: u64) -> Vec<CrossoverRow> {
    drop_percents
        .iter()
        .map(|&pct| {
            let drop = pct as f64 / 100.0;
            let composed: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::fault_free(3, &[(7, 0)]).with_loss(drop, s)))
                .collect();
            let paxos: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::pure_paxos(3, &[(7, 0)]).with_loss(drop, s)))
                .collect();
            CrossoverRow {
                x: pct,
                composed_mean: mean_latency(&composed),
                paxos_mean: mean_latency(&paxos),
                fallback_rate: fallback_rate(&composed),
            }
        })
        .collect()
}

/// B2b: decision latency as the number of contending clients grows
/// (3 servers, random delays 1–4).
pub fn contention_rows(client_counts: &[u64], seeds: u64) -> Vec<CrossoverRow> {
    client_counts
        .iter()
        .map(|&k| {
            let values: Vec<u64> = (1..=k).collect();
            let composed: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &values, s)))
                .collect();
            let paxos: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &values, s).with_fast_phases(0)))
                .collect();
            CrossoverRow {
                x: k,
                composed_mean: mean_latency(&composed),
                paxos_mean: mean_latency(&paxos),
                fallback_rate: fallback_rate(&composed),
            }
        })
        .collect()
}

/// One row of the phase-chain table (B4b).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRow {
    /// Number of Quorum fast phases before the Paxos backup.
    pub fast_phases: u32,
    /// Mean decision latency under contention.
    pub latency_mean: f64,
    /// Mean messages per run.
    pub messages_mean: f64,
    /// Fault-free (sequential) latency — chaining must not slow the
    /// common case.
    pub fault_free_latency: Option<Time>,
}

/// B4b: the cost of chaining additional speculation phases.
pub fn phase_chain_rows(chain_lengths: &[u32], seeds: u64) -> Vec<ChainRow> {
    chain_lengths
        .iter()
        .map(|&fast| {
            let outs: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &[1, 2], s).with_fast_phases(fast)))
                .collect();
            let msgs = outs.iter().map(|o| o.messages as f64).sum::<f64>() / seeds as f64;
            let fault_free =
                run_scenario(&Scenario::fault_free(3, &[(5, 0)]).with_fast_phases(fast));
            ChainRow {
                fast_phases: fast,
                latency_mean: mean_latency(&outs),
                messages_mean: msgs,
                fault_free_latency: fault_free.latencies[0].1,
            }
        })
        .collect()
}

/// One row of the checker-practicality table (B4c): the engine counters
/// behind one verified scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerStatsRow {
    /// Human-readable scenario label.
    pub scenario: String,
    /// Whether every phase and the object projection verified.
    pub ok: bool,
    /// Whether a failure was a resource limit (budget / interpretation
    /// cap) rather than a genuine violation.
    pub resource_limited: bool,
    /// Aggregated engine counters for the whole verification.
    pub stats: SearchStats,
}

impl CheckerStatsRow {
    /// The table cells printed by the `checkers` bench.
    pub fn cells(&self) -> Vec<String> {
        let verdict = if self.ok {
            "ok"
        } else if self.resource_limited {
            "limit"
        } else {
            "FAIL"
        };
        vec![
            self.scenario.clone(),
            verdict.to_string(),
            self.stats.interpretations.to_string(),
            self.stats.nodes.to_string(),
            self.stats.memo_entries.to_string(),
            self.stats.memo_hits.to_string(),
            self.stats.leaf_checks.to_string(),
        ]
    }
}

/// The header matching [`CheckerStatsRow::cells`].
pub const CHECKER_STATS_HEADER: [&str; 7] = [
    "scenario", "verdict", "interps", "nodes", "memo", "hits", "leaves",
];

/// B4c: engine statistics for verifying contended runs (3 servers, the
/// given seeds) and one 3-phase chain — what the speculative checker
/// actually costs on protocol-generated traces.
pub fn checker_stats_rows(seeds: &[u64]) -> Vec<CheckerStatsRow> {
    let mut rows: Vec<CheckerStatsRow> = seeds
        .iter()
        .map(|&seed| {
            let scenario = Scenario::contended(3, &[1, 2], seed);
            let v = verify_run(&scenario, &run_scenario(&scenario));
            CheckerStatsRow {
                scenario: format!("contended(3, [1,2], seed {seed})"),
                ok: v.all_ok(),
                resource_limited: v.resource_limited(),
                stats: v.stats,
            }
        })
        .collect();
    let chained = Scenario::contended(3, &[1, 2], 1).with_fast_phases(3);
    let v = verify_run(&chained, &run_scenario(&chained));
    rows.push(CheckerStatsRow {
        scenario: "contended, 3 fast phases".to_string(),
        ok: v.all_ok(),
        resource_limited: v.resource_limited(),
        stats: v.stats,
    });
    rows
}

/// One row of the partition-speedup table (B5): monolithic vs partitioned
/// engine cost on one multi-key workload family, aggregated over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionRow {
    /// Human-readable workload label (stable: the JSON baseline matcher
    /// keys on it).
    pub scenario: String,
    /// Number of distinct keys in the workload.
    pub keys: u32,
    /// Largest partition count any seed produced.
    pub partitions: usize,
    /// Monolithic engine counters summed over the seeds.
    pub mono: SearchStats,
    /// Partitioned engine counters summed over the seeds (including any
    /// monolithic witness re-derivations).
    pub part: SearchStats,
    /// Seeds whose witness merge had to re-run a monolithic search.
    pub remerged: usize,
    /// Whether every seed's partitioned verdict and witness equalled the
    /// monolithic ones byte for byte.
    pub verdicts_agree: bool,
    /// `mono.nodes / part.nodes` — the headline node-count reduction.
    pub node_ratio: f64,
}

impl PartitionRow {
    /// The table cells printed by the `checkers` and `report` benches.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.keys.to_string(),
            self.partitions.to_string(),
            if self.verdicts_agree {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
            self.mono.nodes.to_string(),
            self.part.nodes.to_string(),
            self.remerged.to_string(),
            format!("{:.2}", self.node_ratio),
        ]
    }
}

/// The header matching [`PartitionRow::cells`].
pub const PARTITION_HEADER: [&str; 8] = [
    "scenario",
    "keys",
    "parts",
    "verdicts",
    "mono_nodes",
    "part_nodes",
    "remerged",
    "ratio",
];

/// The seeds every B5 row aggregates over (pinned so the JSON artifact is
/// reproducible bit for bit).
pub const PARTITION_SEEDS: [u64; 6] = [0, 1, 2, 7, 9, 13];

/// One B5 row: monolithic vs partitioned checking of `generate`d traces
/// over the given ADT and partitioner, aggregated over `seeds`.
fn partition_row<T, P, G>(
    scenario: &str,
    adt: &T,
    partitioner: &P,
    generate: G,
    base: MultiKeyConfig,
    seeds: &[u64],
) -> PartitionRow
where
    T: slin_adt::Adt + Clone + Send + Sync,
    T::Input: Ord + Send + Sync,
    T::Output: Sync,
    P: slin_adt::Partitioner<T>,
    G: Fn(&MultiKeyConfig) -> slin_trace::Trace<slin_core::ObjAction<T, ()>>,
{
    let mut mono_session = Checker::builder(LinChecker::owned(adt.clone()))
        .strategy(Strategy::Monolithic)
        .build();
    let mut part_session = Checker::builder(LinChecker::owned(adt.clone()))
        .partitioner(partitioner)
        .strategy(Strategy::Partitioned)
        .build();
    let mut row = PartitionRow {
        scenario: scenario.to_string(),
        keys: base.keys,
        partitions: 0,
        mono: SearchStats::default(),
        part: SearchStats::default(),
        remerged: 0,
        verdicts_agree: true,
        node_ratio: 0.0,
    };
    for &seed in seeds {
        let t = generate(&MultiKeyConfig { seed, ..base });
        let mono = mono_session.check(&t);
        let part = part_session.check(&t);
        let report = part.partition.expect("partitioned strategy reports");
        row.mono.absorb(&mono.stats);
        row.part.absorb(&report.stats);
        row.partitions = row.partitions.max(report.partitions);
        row.remerged += report.remerged as usize;
        row.verdicts_agree &= part.outcome == mono.outcome;
    }
    row.node_ratio = row.mono.nodes as f64 / row.part.nodes.max(1) as f64;
    row
}

/// B5: node-count reduction of partitioned checking as the key space
/// widens, aggregated over `seeds` (use [`PARTITION_SEEDS`] for the
/// pinned artifact). The `kv keys=1` and `kv hot-key` rows are
/// partition-hostile controls (ratio ~1); the multi-key rows are where
/// P-compositionality pays.
pub fn partition_speedup_rows(seeds: &[u64]) -> Vec<PartitionRow> {
    let base = MultiKeyConfig {
        clients: 5,
        steps: 48,
        skew: 0.3,
        contention: 0.0,
        error_prob: 0.0,
        seed: 0,
        keys: 1,
    };
    let kv = |scenario: &str, cfg: MultiKeyConfig| {
        partition_row(
            scenario,
            &KvStore,
            &KvKeyPartitioner,
            random_multikey_kv_trace,
            cfg,
            seeds,
        )
    };
    vec![
        kv("kv keys=1 (hostile)", MultiKeyConfig { keys: 1, ..base }),
        kv("kv keys=2", MultiKeyConfig { keys: 2, ..base }),
        kv("kv keys=4", MultiKeyConfig { keys: 4, ..base }),
        kv("kv keys=8", MultiKeyConfig { keys: 8, ..base }),
        kv(
            "kv hot-key (hostile)",
            MultiKeyConfig {
                keys: 8,
                contention: 1.0,
                ..base
            },
        ),
        partition_row(
            "set elems=6",
            &Set,
            &SetElemPartitioner,
            random_multikey_set_trace,
            MultiKeyConfig { keys: 6, ..base },
            seeds,
        ),
    ]
}

/// One row of the B10 phase-trace table: the switch-certified keyed
/// checking path (batch partitioning *and* sharded streaming) against the
/// monolithic chain search over traces that cross phase boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePartitionRow {
    /// Human-readable workload label (stable: the JSON baseline matcher
    /// keys on it).
    pub scenario: String,
    /// Number of distinct keys (independence classes) in the workload.
    pub keys: u32,
    /// Largest partition count any seed produced.
    pub partitions: usize,
    /// Monolithic engine counters summed over the seeds.
    pub mono: SearchStats,
    /// Certified-partitioned engine counters summed over the seeds.
    pub part: SearchStats,
    /// Batch or streaming runs that abandoned the keyed path (identity
    /// fallback engaged). The certificate's whole point: must stay 0.
    pub fallbacks: usize,
    /// Whether every seed's partitioned witness/error equalled the
    /// monolithic one byte for byte.
    pub verdicts_agree: bool,
    /// Whether every seed's keyed *streaming* report also equalled the
    /// monolithic batch verdict.
    pub stream_agrees: bool,
    /// `mono.nodes / part.nodes` — the headline node-count reduction.
    pub node_ratio: f64,
}

impl PhasePartitionRow {
    /// The table cells printed by the `report` bench.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.keys.to_string(),
            self.partitions.to_string(),
            if self.verdicts_agree {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
            if self.stream_agrees { "ok" } else { "MISMATCH" }.to_string(),
            self.mono.nodes.to_string(),
            self.part.nodes.to_string(),
            self.fallbacks.to_string(),
            format!("{:.2}", self.node_ratio),
        ]
    }
}

/// The header matching [`PhasePartitionRow::cells`].
pub const PHASE_PARTITION_HEADER: [&str; 9] = [
    "scenario",
    "keys",
    "parts",
    "verdicts",
    "stream",
    "mono_nodes",
    "part_nodes",
    "fallbacks",
    "ratio",
];

/// The seeds every B10 row aggregates over (pinned for the artifact).
pub const PHASE_SEEDS: [u64; 4] = [0, 1, 2, 3];

/// One B10 row: the monolithic speculative checker vs the
/// switch-certified keyed paths (batch session + sharded monitor) over
/// generated phase traces, aggregated over `seeds`.
fn phase_partition_row(
    scenario: &str,
    cert: &SwitchCert,
    base: PhaseConfig,
    seeds: &[u64],
) -> PhasePartitionRow {
    let (m, n) = phase_trace_bounds();
    let chk = SlinChecker::owned(KvStore, ExactInit::new(), m, n);
    let mut mono_session = Checker::builder(chk.clone())
        .strategy(Strategy::Monolithic)
        .build::<Vec<KvInput>>();
    let mut part_session = Checker::builder(chk.clone())
        .partitioner(KvKeyPartitioner)
        .switch_certified(cert)
        .expect("the shipped kv partitioner is certified switch-independent")
        .build::<Vec<KvInput>>();
    let mut row = PhasePartitionRow {
        scenario: scenario.to_string(),
        keys: base.keys,
        partitions: 0,
        mono: SearchStats::default(),
        part: SearchStats::default(),
        fallbacks: 0,
        verdicts_agree: true,
        stream_agrees: true,
        node_ratio: 0.0,
    };
    for &seed in seeds {
        let t = random_phase_kv_trace(&PhaseConfig { seed, ..base });
        let mono = mono_session.check(&t);
        let part = part_session.check(&t);
        let report = part.partition.expect("certified sessions partition");
        row.mono.absorb(&mono.stats);
        row.part.absorb(&report.stats);
        row.partitions = row.partitions.max(report.partitions);
        row.fallbacks += report.fallback.is_some() as usize;
        // Witnesses and error variants must be byte-identical; the work
        // counters inside the Ok report differ by design.
        row.verdicts_agree &= part.outcome.as_ref().map(|r| &r.witness)
            == mono.outcome.as_ref().map(|r| &r.witness)
            && part.outcome.as_ref().err() == mono.outcome.as_ref().err();
        // The same trace through the keyed sharded monitor, switch
        // frames and all.
        let mut mon = SlinMonitor::from_checker(
            chk.clone(),
            KvKeyPartitioner,
            MonitorConfig {
                keyed: true,
                ..MonitorConfig::default()
            },
        );
        for a in t.iter() {
            mon.ingest(a.clone());
        }
        let streamed = mon.report();
        row.fallbacks += streamed.fallback.is_some() as usize;
        row.stream_agrees &= streamed.verdict.as_ref().map(|r| &r.witness)
            == mono.outcome.as_ref().map(|r| &r.witness)
            && streamed.verdict.as_ref().err() == mono.outcome.as_ref().err();
    }
    row.node_ratio = row.mono.nodes as f64 / row.part.nodes.max(1) as f64;
    row
}

/// B10: the switch-certified keyed paths over phase traces, aggregated
/// over `seeds` (use [`PHASE_SEEDS`] for the pinned artifact).
///
/// The `clean` rows are speculatively linearizable by construction: the
/// generator's exact abort values force responses into apply order, so
/// the monolithic chain search linearizes greedily and the keyed win
/// there is agreement at zero fallbacks, not node counts. The `faulty`
/// rows inject perturbed outputs — now every path must *refute*, and
/// refutation is where partitioning pays: the monolithic search exhausts
/// interleavings across all classes while the keyed decomposition
/// localizes the exhaustive search to the violating class. Those rows
/// carry the >2x node-reduction gate (`ci/bench_threshold.py`); the
/// `keys=1` control is partition-hostile (one class, ratio ~1). Every
/// row, clean or faulty, must show **zero fallbacks** — the static
/// analyzer proved the decomposition, so the runtime never abandons it.
pub fn phase_partition_rows(seeds: &[u64]) -> Vec<PhasePartitionRow> {
    let cert = certify_switch(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default())
        .expect("the shipped kv partitioner is switch-independent under ExactInit");
    let base = PhaseConfig {
        clients: 4,
        steps: 36,
        keys: 1,
        skew: 0.3,
        prefix_ops: 4,
        aborts: 2,
        error_prob: 0.0,
        seed: 0,
    };
    let row = |scenario: &str, keys: u32, error_prob: f64| {
        phase_partition_row(
            scenario,
            &cert,
            PhaseConfig {
                keys,
                error_prob,
                ..base
            },
            seeds,
        )
    };
    vec![
        row("phase keys=4 clean", 4, 0.0),
        row("phase keys=8 clean", 8, 0.0),
        row("phase keys=1 faulty (hostile)", 1, 0.4),
        row("phase keys=2 faulty", 2, 0.4),
        row("phase keys=4 faulty", 4, 0.4),
        row("phase keys=8 faulty", 8, 0.4),
    ]
}

/// One row of the streaming-monitor load table (B6): sustained ingest
/// throughput and tail latency of the online monitor on one keys × skew
/// workload family, aggregated over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingRow {
    /// Human-readable workload label (stable: the JSON baseline matcher
    /// keys on it).
    pub scenario: String,
    /// Number of distinct keys in the workload.
    pub keys: u32,
    /// Zipf skew exponent of the workload.
    pub skew: f64,
    /// Events ingested across all seeds.
    pub events: usize,
    /// Shards the monitor ended with (max over seeds).
    pub shards: usize,
    /// Sustained ingest throughput, events per second (wall clock).
    pub events_per_sec: f64,
    /// 99th-percentile single-event ingest latency, microseconds.
    pub p99_ingest_us: f64,
    /// Bounded re-searches the shard frontiers forced (deterministic).
    pub fallback_searches: usize,
    /// Events retired by bounded-window GC (deterministic).
    pub retired_events: usize,
    /// Whether every seed's stream stayed linearizable (they are
    /// linearizable by construction).
    pub ok: bool,
}

impl StreamingRow {
    /// The table cells printed by the `streaming` bench.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.keys.to_string(),
            format!("{:.1}", self.skew),
            self.events.to_string(),
            self.shards.to_string(),
            format!("{:.0}", self.events_per_sec),
            format!("{:.1}", self.p99_ingest_us),
            self.fallback_searches.to_string(),
            self.retired_events.to_string(),
            if self.ok { "ok" } else { "FAIL" }.to_string(),
        ]
    }
}

/// The header matching [`StreamingRow::cells`].
pub const STREAMING_HEADER: [&str; 10] = [
    "scenario",
    "keys",
    "skew",
    "events",
    "shards",
    "ev/s",
    "p99_us",
    "fallbacks",
    "retired",
    "ok",
];

/// The seeds every B6 row aggregates over.
pub const STREAMING_SEEDS: [u64; 3] = [0, 1, 2];

/// Events per seed in the B6 load driver.
const STREAMING_STEPS: usize = 1600;

fn streaming_row(
    scenario: &str,
    keys: u32,
    skew: f64,
    contention: f64,
    seeds: &[u64],
    steps: usize,
) -> StreamingRow {
    let mut row = StreamingRow {
        scenario: scenario.to_string(),
        keys,
        skew,
        events: 0,
        shards: 0,
        events_per_sec: 0.0,
        p99_ingest_us: 0.0,
        fallback_searches: 0,
        retired_events: 0,
        ok: true,
    };
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut total_secs = 0.0f64;
    for &seed in seeds {
        let cfg = MultiKeyConfig {
            // Few enough clients that shard-quiescent points (the GC's
            // safe retirement cuts) recur regularly even on one key.
            clients: 3,
            steps,
            keys,
            skew,
            contention,
            error_prob: 0.0,
            seed,
        };
        let t = random_multikey_kv_trace(&cfg);
        let mut mon: LinMonitor<KvStore, KvKeyPartitioner> = LinMonitor::owned_with_config(
            KvStore,
            KvKeyPartitioner,
            MonitorConfig {
                window: Some(48),
                ..Default::default()
            },
        );
        let run_start = std::time::Instant::now();
        for a in t.iter() {
            let start = std::time::Instant::now();
            let outcome = mon.ingest(a.clone());
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            row.ok &= outcome.status == MonitorStatus::Ok;
        }
        total_secs += run_start.elapsed().as_secs_f64();
        row.events += t.len();
        row.shards = row.shards.max(mon.shards());
        let report = mon.report();
        row.fallback_searches += report.shard.fallback_searches;
        row.retired_events += report.shard.retired_events;
    }
    row.events_per_sec = row.events as f64 / total_secs.max(1e-9);
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = ((latencies_us.len() as f64 * 0.99) as usize).min(latencies_us.len() - 1);
    row.p99_ingest_us = latencies_us[p99];
    row
}

/// B6: the online monitor's sustained events/sec and p99 ingest latency
/// across keys × skew (plus one hot-key contention control), on
/// bounded-window (O(window)-memory) monitors over linearizable-by-
/// construction multi-key KV streams. The verdict/fallback/GC columns are
/// deterministic in the seeds; the throughput and latency columns measure
/// wall clock.
pub fn streaming_rows(seeds: &[u64]) -> Vec<StreamingRow> {
    streaming_rows_with(seeds, STREAMING_STEPS)
}

/// [`streaming_rows`] with an explicit per-seed stream length (the crate
/// tests use short streams so debug-mode `cargo test` stays fast).
pub fn streaming_rows_with(seeds: &[u64], steps: usize) -> Vec<StreamingRow> {
    vec![
        streaming_row("stream kv keys=1 skew=0", 1, 0.0, 0.0, seeds, steps),
        streaming_row("stream kv keys=4 skew=0.6", 4, 0.6, 0.0, seeds, steps),
        streaming_row("stream kv keys=16 skew=0.6", 16, 0.6, 0.0, seeds, steps),
        streaming_row("stream kv keys=16 skew=1.4", 16, 1.4, 0.0, seeds, steps),
        streaming_row("stream kv keys=16 hot-key", 16, 0.6, 0.9, seeds, steps),
    ]
}

/// One row of the hostile never-quiescent streaming table (B6h): the
/// epoch-GC monitor's ingest tail latency and retained-memory proxy as
/// the window size grows, on streams that never quiesce (permanently
/// pending invocations and/or Zipf-tailed response delays straddling many
/// windows). Every column except the two wall-clock ones is a pure
/// function of the pinned seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct HostileRow {
    /// Human-readable workload label (stable: the JSON baseline matcher
    /// keys on it, and it encodes the window size).
    pub scenario: String,
    /// The monitor's GC window size.
    pub window: usize,
    /// Events ingested across all seeds.
    pub events: usize,
    /// Sustained ingest throughput, events per second (wall clock).
    pub events_per_sec: f64,
    /// 99th-percentile single-event ingest latency, microseconds (wall
    /// clock).
    pub p99_ingest_us: f64,
    /// Whether every seed's stream stayed linearizable (they are
    /// linearizable by construction).
    pub ok: bool,
    /// Events retired by window GC (deterministic).
    pub retired_events: usize,
    /// Non-quiescent epoch cuts taken (deterministic).
    pub epoch_cuts: usize,
    /// Forced lossy cuts (deterministic; expected 0 — `epoch_force` off).
    pub lossy_cuts: usize,
    /// Enumeration/extension nodes expanded — the deterministic work
    /// proxy behind the wall-clock latency columns.
    pub search_nodes: usize,
    /// Peak retained configurations (frontiers + seeds) over the sampled
    /// stream positions (deterministic memory proxy, state component).
    pub peak_live_configs: usize,
    /// Peak pointer-distinct persistent-multiset trie nodes reachable from
    /// the monitor (deterministic memory proxy, bound-snapshot component).
    pub peak_multiset_nodes: usize,
    /// Peak events retained in shard windows (deterministic; bounded-GC
    /// health — grows without bound if cuts stop firing).
    pub peak_window_events: usize,
}

impl HostileRow {
    /// The table cells printed by the `streaming` bench.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.window.to_string(),
            self.events.to_string(),
            format!("{:.0}", self.events_per_sec),
            format!("{:.1}", self.p99_ingest_us),
            self.retired_events.to_string(),
            self.epoch_cuts.to_string(),
            self.lossy_cuts.to_string(),
            self.search_nodes.to_string(),
            self.peak_live_configs.to_string(),
            self.peak_multiset_nodes.to_string(),
            self.peak_window_events.to_string(),
            if self.ok { "ok" } else { "FAIL" }.to_string(),
        ]
    }
}

/// The header matching [`HostileRow::cells`].
pub const HOSTILE_HEADER: [&str; 13] = [
    "scenario",
    "window",
    "events",
    "ev/s",
    "p99_us",
    "retired",
    "epoch_cuts",
    "lossy",
    "search_nodes",
    "peak_cfgs",
    "peak_ms_nodes",
    "peak_win_ev",
    "ok",
];

/// The window-size sweep of the B6h table. Exact epoch cuts re-enumerate
/// the retained window at each cut, so their cost grows with the window:
/// the sweep covers the bounded-window regime the exact mode targets
/// (larger windows on hostile streams are `epoch_force` territory).
pub const HOSTILE_WINDOWS: [usize; 4] = [8, 12, 16, 24];

/// Events per seed in the B6h load driver.
const HOSTILE_STEPS: usize = 1200;

/// Stream positions between memory-proxy samples (deterministic, so the
/// peak columns are too).
const HOSTILE_SAMPLE_EVERY: usize = 64;

fn hostile_row(
    scenario: &str,
    base: HostileConfig,
    window: usize,
    seeds: &[u64],
    steps: usize,
) -> HostileRow {
    let mut row = HostileRow {
        scenario: format!("{scenario} w={window}"),
        window,
        events: 0,
        events_per_sec: 0.0,
        p99_ingest_us: 0.0,
        ok: true,
        retired_events: 0,
        epoch_cuts: 0,
        lossy_cuts: 0,
        search_nodes: 0,
        peak_live_configs: 0,
        peak_multiset_nodes: 0,
        peak_window_events: 0,
    };
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut total_secs = 0.0f64;
    for &seed in seeds {
        let cfg = HostileConfig {
            steps,
            seed,
            ..base
        };
        let t = random_hostile_kv_trace(&cfg);
        let mut mon: LinMonitor<KvStore, KvKeyPartitioner> = LinMonitor::owned_with_config(
            KvStore,
            KvKeyPartitioner,
            MonitorConfig {
                window: Some(window),
                ..Default::default()
            },
        );
        let run_start = std::time::Instant::now();
        for (i, a) in t.iter().enumerate() {
            let start = std::time::Instant::now();
            let outcome = mon.ingest(a.clone());
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            row.ok &= outcome.status == MonitorStatus::Ok;
            if (i + 1) % HOSTILE_SAMPLE_EVERY == 0 {
                let s = mon.shard_summary();
                row.peak_live_configs = row.peak_live_configs.max(s.live_configs);
                row.peak_multiset_nodes = row.peak_multiset_nodes.max(s.multiset_nodes);
                row.peak_window_events = row.peak_window_events.max(s.window_events);
            }
        }
        total_secs += run_start.elapsed().as_secs_f64();
        row.events += t.len();
        let s = mon.shard_summary();
        row.retired_events += s.retired_events;
        row.epoch_cuts += s.epoch_cuts;
        row.lossy_cuts += s.lossy_cuts;
        row.search_nodes += s.search_nodes;
        row.peak_live_configs = row.peak_live_configs.max(s.live_configs);
        row.peak_multiset_nodes = row.peak_multiset_nodes.max(s.multiset_nodes);
        row.peak_window_events = row.peak_window_events.max(s.window_events);
    }
    row.events_per_sec = row.events as f64 / total_secs.max(1e-9);
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99 = ((latencies_us.len() as f64 * 0.99) as usize).min(latencies_us.len() - 1);
    row.p99_ingest_us = latencies_us[p99];
    row
}

/// The never-quiescent workload families swept by B6h.
fn hostile_bases() -> Vec<(&'static str, HostileConfig)> {
    vec![
        (
            // Every invocation eventually responds, but the Zipf delay
            // tail keeps operations pending across many windows: the
            // stream is never quiescent at cut points, and late responses
            // exercise symbolic-completion absorption. Concurrency stays
            // bounded (few clients, short tail) — the regime exact epoch
            // cuts target; wider pending sets need `epoch_force`.
            "hostile zipf-delay",
            HostileConfig {
                clients: 5,
                keys: 2,
                skew: 0.7,
                never_frac: 0.0,
                stuck_applies: true,
                delay_zipf: 1.1,
                max_delay: 24,
                error_prob: 0.0,
                steps: 0, // per-row
                seed: 0,  // per-seed
            },
        ),
        (
            // A straggler fraction never responds at all: those clients
            // wedge permanently, so quiescence never returns and every cut
            // from then on is an epoch cut.
            "hostile stragglers",
            HostileConfig {
                clients: 4,
                keys: 1,
                skew: 0.7,
                never_frac: 0.0025,
                stuck_applies: true,
                delay_zipf: 1.3,
                max_delay: 12,
                error_prob: 0.0,
                steps: 0,
                seed: 0,
            },
        ),
    ]
}

/// B6h: p99 ingest latency and the retained-memory proxy versus window
/// size on hostile never-quiescent streams — the O(1)-amortized-ingest /
/// O(window + alphabet)-memory acceptance table. The work and memory
/// columns are deterministic in the seeds; CI gates them (flatness in
/// window size, regression vs baseline) in `ci/bench_threshold.py`.
pub fn hostile_rows(seeds: &[u64]) -> Vec<HostileRow> {
    hostile_rows_with(seeds, HOSTILE_STEPS)
}

/// [`hostile_rows`] with an explicit per-seed stream length (the crate
/// tests use short streams so debug-mode `cargo test` stays fast).
pub fn hostile_rows_with(seeds: &[u64], steps: usize) -> Vec<HostileRow> {
    let mut rows = Vec::new();
    for (scenario, base) in hostile_bases() {
        for &window in &HOSTILE_WINDOWS {
            rows.push(hostile_row(scenario, base, window, seeds, steps));
        }
    }
    rows
}

/// One row of the multi-tenant daemon table (B8): the `slin-daemon`
/// pipeline's sustained throughput and ingest tail latency under Zipf
/// tenant skew — wire decode + per-tenant routing + bounded queues +
/// lane-pool checking, end to end over the in-process transport.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantRow {
    /// Human-readable workload label (stable: the JSON baseline matcher
    /// keys on it).
    pub scenario: String,
    /// Tenant count of the workload.
    pub tenants: u64,
    /// Zipf exponent of the tenant interleave.
    pub skew: f64,
    /// Per-tenant queue high-water mark in force.
    pub queue_capacity: usize,
    /// Events checked across all seeds.
    pub events: usize,
    /// Sustained end-to-end throughput, checked events per second (wall
    /// clock).
    pub events_per_sec: f64,
    /// 99th-percentile per-chunk ingest latency, microseconds (wall
    /// clock), worst seed.
    pub p99_ingest_us: f64,
    /// Deepest per-tenant queue observed, worst seed (bounded-queue
    /// health: must never exceed `queue_capacity`).
    pub queue_depth_peak: usize,
    /// Shed activations across all seeds (the saturating scenario must
    /// shed; the provisioned ones must not).
    pub sheds: u64,
    /// Tenants left in the lossy-shed state, worst seed.
    pub shed_tenants: usize,
    /// Whether no tenant reported a violation or ill-formed stream (the
    /// workloads are linearizable by construction; shedding may downgrade
    /// to Unknown, never to a false verdict).
    pub ok: bool,
}

impl MultiTenantRow {
    /// The table cells printed by the `streaming` bench.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.tenants.to_string(),
            format!("{:.1}", self.skew),
            self.queue_capacity.to_string(),
            self.events.to_string(),
            format!("{:.0}", self.events_per_sec),
            format!("{:.1}", self.p99_ingest_us),
            self.queue_depth_peak.to_string(),
            self.sheds.to_string(),
            self.shed_tenants.to_string(),
            if self.ok { "ok" } else { "FAIL" }.to_string(),
        ]
    }
}

/// The header matching [`MultiTenantRow::cells`].
pub const MULTITENANT_HEADER: [&str; 11] = [
    "scenario", "tenants", "skew", "queue", "events", "ev/s", "p99_us", "peak_q", "sheds",
    "shed_ten", "ok",
];

/// Generation steps per tenant in the B8 load driver.
const MULTITENANT_STEPS: usize = 120;

/// The B8 workload families: provisioned daemons (uniform and skewed
/// tenant traffic, queues never saturate, worker lanes pump between
/// chunks) and a deliberately under-provisioned one (tiny queues, hot
/// tenants, no pumping — the backpressure shed must engage). The last
/// tuple slot is the pump-between-chunks flag.
fn multitenant_bases() -> Vec<(&'static str, LoadConfig, TenantPolicy, bool)> {
    vec![
        (
            "daemon uniform",
            LoadConfig {
                tenants: 64,
                clients: 3,
                keys: 3,
                tenant_skew: 0.0,
                chunk_frames: 256,
                ..LoadConfig::default()
            },
            TenantPolicy {
                queue_capacity: 4096,
                window: Some(32),
                shed_lossy: true,
                ..TenantPolicy::default()
            },
            true,
        ),
        (
            "daemon zipf",
            LoadConfig {
                tenants: 128,
                clients: 3,
                keys: 3,
                tenant_skew: 1.2,
                chunk_frames: 256,
                ..LoadConfig::default()
            },
            TenantPolicy {
                queue_capacity: 4096,
                window: Some(32),
                shed_lossy: true,
                ..TenantPolicy::default()
            },
            true,
        ),
        (
            // Tiny queues and hot tenants: the ingest path saturates the
            // high-water mark and the lossy shed engages (no pump between
            // chunks — ingest must drain inline).
            "daemon shed",
            LoadConfig {
                tenants: 16,
                clients: 4,
                keys: 2,
                tenant_skew: 1.5,
                chunk_frames: 512,
                ..LoadConfig::default()
            },
            TenantPolicy {
                queue_capacity: 8,
                window: Some(16),
                shed_lossy: true,
                ..TenantPolicy::default()
            },
            false,
        ),
    ]
}

fn multitenant_row(
    scenario: &str,
    base: LoadConfig,
    policy: TenantPolicy,
    pump_between_chunks: bool,
    seeds: &[u64],
    steps: usize,
) -> MultiTenantRow {
    let mut row = MultiTenantRow {
        scenario: scenario.to_string(),
        tenants: base.tenants,
        skew: base.tenant_skew,
        queue_capacity: policy.queue_capacity,
        events: 0,
        events_per_sec: 0.0,
        p99_ingest_us: 0.0,
        queue_depth_peak: 0,
        sheds: 0,
        shed_tenants: 0,
        ok: true,
    };
    let mut total_secs = 0.0f64;
    for &seed in seeds {
        let cfg = LoadConfig {
            steps_per_tenant: steps,
            seed,
            ..base
        };
        let workload = slin_daemon::generate(&cfg);
        let mut daemon = Daemon::new(DaemonConfig {
            workers: 4,
            default_policy: policy,
        });
        let (rx, producer) = slin_daemon::transport(workload.chunks, 8);
        let run_start = std::time::Instant::now();
        for chunk in rx.iter() {
            daemon.ingest_bytes(&chunk).expect("well-formed workload");
            if pump_between_chunks {
                daemon.pump();
            }
        }
        daemon.pump();
        total_secs += run_start.elapsed().as_secs_f64();
        producer.join().expect("producer thread");
        let counts = daemon.poll_verdicts();
        let m = daemon.metrics();
        row.events += m.events as usize;
        row.p99_ingest_us = row.p99_ingest_us.max(m.p99_ingest_us as f64);
        row.queue_depth_peak = row.queue_depth_peak.max(m.queue_depth_peak);
        row.sheds += m.sheds;
        row.shed_tenants = row.shed_tenants.max(m.shed_tenants);
        row.ok &= counts.violation == 0 && counts.ill_formed == 0;
        row.ok &= m.queue_depth_peak <= policy.queue_capacity;
        row.ok &= m.events == workload.frames as u64;
    }
    row.events_per_sec = row.events as f64 / total_secs.max(1e-9);
    row
}

/// B8: end-to-end multi-tenant daemon throughput and tail latency under
/// tenant skew, plus bounded-queue and shed-observability health columns.
/// CI gates the (normalised) throughput and the queue bound in
/// `ci/bench_threshold.py`.
pub fn multitenant_rows(seeds: &[u64]) -> Vec<MultiTenantRow> {
    multitenant_rows_with(seeds, MULTITENANT_STEPS)
}

/// [`multitenant_rows`] with an explicit per-tenant stream length (the
/// crate tests use short streams so debug-mode `cargo test` stays fast).
pub fn multitenant_rows_with(seeds: &[u64], steps: usize) -> Vec<MultiTenantRow> {
    multitenant_bases()
        .into_iter()
        .map(|(scenario, base, policy, pump)| {
            multitenant_row(scenario, base, policy, pump, seeds, steps)
        })
        .collect()
}

/// One row of the observability-overhead table (B9): the same pinned
/// B6-style streams ingested through two monitors per rep — one with the
/// default no-op observer, one with a full [`StackObserver`] (metrics
/// registry + span ring) installed — run back to back so each rep yields
/// one paired instrumented/noop wall-time ratio. `overhead_frac` is the
/// **median** of those paired ratios minus one: pairing cancels slow
/// clock-frequency drift, the median kills scheduler outliers, and the
/// ratio itself is machine-independent to first order (both loops run
/// identical code on identical data in the same process). The archival
/// scenario additionally reports the witness-archive accounting columns
/// against its O(shards · depth · window) memory bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRow {
    /// Human-readable scenario label (stable: the JSON baseline matcher
    /// keys on it).
    pub scenario: String,
    /// Events ingested per rep (all seeds).
    pub events: usize,
    /// Best-of-reps ingest throughput with the no-op observer, events/sec.
    pub noop_events_per_sec: f64,
    /// Best-of-reps ingest throughput with the full observer, events/sec.
    pub instrumented_events_per_sec: f64,
    /// Observer slowdown: the median over reps of the paired
    /// `instrumented_secs / noop_secs` wall-time ratio, minus one (small
    /// negative values are measurement noise).
    pub overhead_frac: f64,
    /// Configured witness-archive depth, retired windows per shard
    /// (`0` — archival off, the pure-overhead rows).
    pub archive_windows: usize,
    /// Peak GC-retired events held in the witness archives at report time
    /// (deterministic in the seeds).
    pub archived_events: usize,
    /// The archive memory bound: shards × archive_windows × window events
    /// (deterministic).
    pub archive_event_bound: usize,
    /// Whether the final report reconstructed the closed trace from the
    /// archive (expected: exactly the archival scenario).
    pub reconstructed: bool,
    /// Whether every stream stayed linearizable under both observers.
    pub ok: bool,
}

impl ObsRow {
    /// The table cells printed by the `streaming` bench.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.scenario.clone(),
            self.events.to_string(),
            format!("{:.0}", self.noop_events_per_sec),
            format!("{:.0}", self.instrumented_events_per_sec),
            format!("{:+.1}%", self.overhead_frac * 100.0),
            self.archive_windows.to_string(),
            self.archived_events.to_string(),
            if self.reconstructed { "yes" } else { "no" }.to_string(),
            if self.ok { "ok" } else { "FAIL" }.to_string(),
        ]
    }
}

/// The header matching [`ObsRow::cells`].
pub const OBS_HEADER: [&str; 9] = [
    "scenario",
    "events",
    "noop_ev/s",
    "inst_ev/s",
    "overhead",
    "archive",
    "archived",
    "reconstructed",
    "ok",
];

/// Paired noop/instrumented reps per row: the throughput columns keep the
/// per-mode minimum, the overhead column the median paired ratio.
const OBS_REPS: usize = 5;

fn obs_row(
    scenario: &str,
    keys: u32,
    skew: f64,
    window: usize,
    archive_windows: usize,
    seeds: &[u64],
    steps: usize,
) -> ObsRow {
    let traces: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            random_multikey_kv_trace(&MultiKeyConfig {
                clients: 3,
                steps,
                keys,
                skew,
                contention: 0.0,
                error_prob: 0.0,
                seed,
            })
        })
        .collect();
    let config = MonitorConfig {
        window: Some(window),
        archive_windows,
        ..Default::default()
    };
    // One rep of one mode: ingest every seed's stream (timed), then
    // report (untimed — reporting is not the hot path being measured).
    let run = |obs: Obs| -> (f64, bool, usize, usize, bool) {
        let (mut ok, mut archived, mut shards, mut reconstructed) = (true, 0usize, 0usize, true);
        let mut ingest_secs = 0.0f64;
        for t in &traces {
            let mut mon: LinMonitor<KvStore, KvKeyPartitioner> =
                LinMonitor::owned_with_config(KvStore, KvKeyPartitioner, config)
                    .with_observer(obs.clone());
            let start = std::time::Instant::now();
            for a in t.iter() {
                ok &= mon.ingest(a.clone()).status == MonitorStatus::Ok;
            }
            ingest_secs += start.elapsed().as_secs_f64();
            shards = shards.max(mon.shards());
            let report = mon.report();
            ok &= report.verdict.is_ok();
            archived = archived.max(report.shard.archived_events);
            reconstructed &= report.reconstructed;
        }
        (ingest_secs, ok, archived, shards, reconstructed)
    };
    let instrumented = Obs::new(std::sync::Arc::new(StackObserver::with_tracing(1 << 12)));
    // Warm-up pass (untimed): populate allocator arenas, caches, and
    // branch predictors so the first timed pair is not systematically
    // slower on whichever mode happens to run it first.
    run(Obs::noop());
    let (mut noop_best, mut inst_best) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(OBS_REPS);
    let (mut ok, mut archived, mut shards, mut reconstructed) = (true, 0usize, 0usize, true);
    for _ in 0..OBS_REPS {
        let (noop_secs, run_ok, _, _, _) = run(Obs::noop());
        noop_best = noop_best.min(noop_secs);
        ok &= run_ok;
        let (inst_secs, run_ok, a, s, r) = run(instrumented.clone());
        inst_best = inst_best.min(inst_secs);
        ok &= run_ok;
        archived = archived.max(a);
        shards = shards.max(s);
        reconstructed &= r;
        ratios.push(inst_secs / noop_secs.max(1e-12));
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let events: usize = traces.iter().map(|t| t.len()).sum();
    ObsRow {
        scenario: scenario.to_string(),
        events,
        noop_events_per_sec: events as f64 / noop_best.max(1e-9),
        instrumented_events_per_sec: events as f64 / inst_best.max(1e-9),
        overhead_frac: ratios[ratios.len() / 2] - 1.0,
        archive_windows,
        archived_events: archived,
        archive_event_bound: shards * archive_windows * window,
        reconstructed,
        ok,
    }
}

/// B9: the observability tax and the witness-archive bound. Two rows
/// re-run B6-shaped workloads with and without a full [`StackObserver`]
/// (the ≤5% overhead gate in `ci/bench_threshold.py` keys on their
/// `overhead_frac`); the third drives a small window with a deep witness
/// archive, checking that reconstruction fires and the archive stays
/// inside its O(shards · depth · window) event bound.
pub fn obs_rows(seeds: &[u64]) -> Vec<ObsRow> {
    obs_rows_with(seeds, STREAMING_STEPS)
}

/// [`obs_rows`] with an explicit per-seed stream length (the crate tests
/// use short streams so debug-mode `cargo test` stays fast).
pub fn obs_rows_with(seeds: &[u64], steps: usize) -> Vec<ObsRow> {
    vec![
        obs_row("obs kv keys=4 skew=0.6", 4, 0.6, 48, 0, seeds, steps),
        obs_row("obs kv keys=16 skew=1.4", 16, 1.4, 48, 0, seeds, steps),
        // Reconstruction re-runs the monolithic batch check on the
        // *closed* trace, whose single-key search cost grows with stream
        // length: capped so the re-check stays inside the default node
        // budget and the row's verdict exercises the `Ok` path.
        obs_row(
            "obs archive kv keys=1 w=8",
            1,
            0.0,
            8,
            4096,
            seeds,
            steps.min(300),
        ),
    ]
}

fn stats_json(s: &SearchStats) -> Json {
    Json::Obj(vec![
        ("nodes", Json::count(s.nodes)),
        ("memo_entries", Json::count(s.memo_entries)),
        ("memo_hits", Json::count(s.memo_hits)),
        ("leaf_checks", Json::count(s.leaf_checks)),
        ("max_history_len", Json::count(s.max_history_len)),
        ("interpretations", Json::count(s.interpretations)),
    ])
}

fn time_json(t: Option<Time>) -> Json {
    t.map(|t| Json::Int(t as i64)).unwrap_or(Json::Null)
}

/// Assembles every B-series table into one machine-readable JSON artifact
/// (schema `slin-bench/v2`), measuring the B6 streaming rows afresh.
///
/// Every section except B6's throughput/latency columns is a pure
/// function of the code under measurement (pinned seeds, node counts): CI
/// diffs the artifact against the committed baseline to catch regressions
/// in the partition speedup, the engine counters, and the (normalised)
/// streaming throughput — see `ci/bench_threshold.py`.
pub fn bench_report_json() -> String {
    bench_report_json_with(
        &streaming_rows(&STREAMING_SEEDS),
        &hostile_rows(&STREAMING_SEEDS),
        &multitenant_rows(&STREAMING_SEEDS),
        &obs_rows(&STREAMING_SEEDS),
    )
}

/// [`bench_report_json`] over pre-measured B6/B6h/B8/B9 rows (lets tests
/// check the deterministic sections for bit-reproducibility).
pub fn bench_report_json_with(
    b6_rows: &[StreamingRow],
    b6h_rows: &[HostileRow],
    b8_rows: &[MultiTenantRow],
    b9_rows: &[ObsRow],
) -> String {
    let b1 = latency_rows(&[3, 5, 7])
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("servers", Json::count(r.servers)),
                ("composed", time_json(r.composed)),
                ("paxos", time_json(r.paxos)),
                ("composed_msgs", Json::count(r.composed_msgs)),
                ("paxos_msgs", Json::count(r.paxos_msgs)),
            ])
        })
        .collect();
    let crossover = |rows: Vec<CrossoverRow>| -> Json {
        Json::Arr(
            rows.into_iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("x", Json::Int(r.x as i64)),
                        ("composed_mean", Json::Float(r.composed_mean)),
                        ("paxos_mean", Json::Float(r.paxos_mean)),
                        ("fallback_rate", Json::Float(r.fallback_rate)),
                    ])
                })
                .collect(),
        )
    };
    let b4b = phase_chain_rows(&[1, 2, 3], 6)
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("fast_phases", Json::Int(r.fast_phases as i64)),
                ("latency_mean", Json::Float(r.latency_mean)),
                ("messages_mean", Json::Float(r.messages_mean)),
                ("fault_free_latency", time_json(r.fault_free_latency)),
            ])
        })
        .collect();
    let b4c = checker_stats_rows(&[0, 1, 7])
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("ok", Json::Bool(r.ok)),
                ("resource_limited", Json::Bool(r.resource_limited)),
                ("stats", stats_json(&r.stats)),
            ])
        })
        .collect();
    let b5 = partition_speedup_rows(&PARTITION_SEEDS)
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("keys", Json::Int(r.keys as i64)),
                ("partitions", Json::count(r.partitions)),
                ("mono", stats_json(&r.mono)),
                ("part", stats_json(&r.part)),
                ("remerged", Json::count(r.remerged)),
                ("verdicts_agree", Json::Bool(r.verdicts_agree)),
                ("node_ratio", Json::Float(r.node_ratio)),
            ])
        })
        .collect();
    let b10 = phase_partition_rows(&PHASE_SEEDS)
        .into_iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("keys", Json::Int(r.keys as i64)),
                ("partitions", Json::count(r.partitions)),
                ("mono", stats_json(&r.mono)),
                ("part", stats_json(&r.part)),
                ("fallbacks", Json::count(r.fallbacks)),
                ("verdicts_agree", Json::Bool(r.verdicts_agree)),
                ("stream_agrees", Json::Bool(r.stream_agrees)),
                ("node_ratio", Json::Float(r.node_ratio)),
            ])
        })
        .collect();
    let b6 = b6_rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("keys", Json::Int(r.keys as i64)),
                ("skew", Json::Float(r.skew)),
                ("events", Json::count(r.events)),
                ("shards", Json::count(r.shards)),
                ("events_per_sec", Json::Float(r.events_per_sec)),
                ("p99_ingest_us", Json::Float(r.p99_ingest_us)),
                ("fallback_searches", Json::count(r.fallback_searches)),
                ("retired_events", Json::count(r.retired_events)),
                ("ok", Json::Bool(r.ok)),
            ])
        })
        .collect();
    let b6h = b6h_rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("window", Json::count(r.window)),
                ("events", Json::count(r.events)),
                ("events_per_sec", Json::Float(r.events_per_sec)),
                ("p99_ingest_us", Json::Float(r.p99_ingest_us)),
                ("ok", Json::Bool(r.ok)),
                ("retired_events", Json::count(r.retired_events)),
                ("epoch_cuts", Json::count(r.epoch_cuts)),
                ("lossy_cuts", Json::count(r.lossy_cuts)),
                ("search_nodes", Json::count(r.search_nodes)),
                ("peak_live_configs", Json::count(r.peak_live_configs)),
                ("peak_multiset_nodes", Json::count(r.peak_multiset_nodes)),
                ("peak_window_events", Json::count(r.peak_window_events)),
            ])
        })
        .collect();
    let b8 = b8_rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("tenants", Json::Int(r.tenants as i64)),
                ("skew", Json::Float(r.skew)),
                ("queue_capacity", Json::count(r.queue_capacity)),
                ("events", Json::count(r.events)),
                ("events_per_sec", Json::Float(r.events_per_sec)),
                ("p99_ingest_us", Json::Float(r.p99_ingest_us)),
                ("queue_depth_peak", Json::count(r.queue_depth_peak)),
                ("sheds", Json::Int(r.sheds as i64)),
                ("shed_tenants", Json::count(r.shed_tenants)),
                ("ok", Json::Bool(r.ok)),
            ])
        })
        .collect();
    let b9 = b9_rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario", Json::Str(r.scenario.clone())),
                ("events", Json::count(r.events)),
                ("noop_events_per_sec", Json::Float(r.noop_events_per_sec)),
                (
                    "instrumented_events_per_sec",
                    Json::Float(r.instrumented_events_per_sec),
                ),
                ("overhead_frac", Json::Float(r.overhead_frac)),
                ("archive_windows", Json::count(r.archive_windows)),
                ("archived_events", Json::count(r.archived_events)),
                ("archive_event_bound", Json::count(r.archive_event_bound)),
                ("reconstructed", Json::Bool(r.reconstructed)),
                ("ok", Json::Bool(r.ok)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema", Json::Str("slin-bench/v2".into())),
        ("b1_latency", Json::Arr(b1)),
        (
            "b2_crossover",
            crossover(crossover_rows(&[0, 10, 20, 30], 8)),
        ),
        ("b2b_contention", crossover(contention_rows(&[1, 2, 3], 6))),
        ("b4b_phase_chain", Json::Arr(b4b)),
        ("b4c_checker_stats", Json::Arr(b4c)),
        ("b5_partition", Json::Arr(b5)),
        ("b6_streaming", Json::Arr(b6)),
        ("b6h_hostile", Json::Arr(b6h)),
        ("b8_multitenant", Json::Arr(b8)),
        ("b9_observability", Json::Arr(b9)),
        ("b10_phase_partition", Json::Arr(b10)),
    ])
    .render()
}

/// Renders rows as an aligned text table (used by the benches to print the
/// regenerated experiment tables).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b1_shape_fast_path_beats_paxos_everywhere() {
        for row in latency_rows(&[3, 5, 7]) {
            let (Some(fast), Some(slow)) = (row.composed, row.paxos) else {
                panic!("undecided run in fault-free scenario: {row:?}");
            };
            assert_eq!(fast, 2, "n={}", row.servers);
            assert!(slow >= 3, "n={}", row.servers);
            assert!(fast < slow, "n={}", row.servers);
        }
    }

    #[test]
    fn b2_shape_loss_erodes_the_fast_path() {
        let rows = crossover_rows(&[0, 30], 12);
        // Without loss the composed protocol is strictly faster…
        assert!(rows[0].composed_mean < rows[0].paxos_mean, "{rows:?}");
        assert_eq!(rows[0].fallback_rate, 0.0);
        // …and heavy loss triggers fallbacks, degrading it toward (or past)
        // pure Paxos.
        assert!(rows[1].fallback_rate > 0.0, "{rows:?}");
        assert!(
            rows[1].composed_mean > rows[0].composed_mean,
            "loss should increase composed latency: {rows:?}"
        );
    }

    #[test]
    fn b4b_shape_chains_keep_the_common_case_fast() {
        let rows = phase_chain_rows(&[1, 2, 3], 8);
        for row in &rows {
            // The fault-free fast path stays at 2 message delays no matter
            // how long the chain — added phases are pay-per-use.
            assert_eq!(row.fault_free_latency, Some(2), "{row:?}");
        }
        // Chaining stays linear, never quadratic: a retried fast phase can
        // even *save* messages versus falling straight into Paxos (transient
        // contention resolves), so we only bound the growth.
        assert!(
            rows[2].messages_mean <= rows[0].messages_mean * 2.0,
            "{rows:?}"
        );
    }

    #[test]
    fn b4c_engine_stats_rows_verify_and_count() {
        let rows = checker_stats_rows(&[0, 7]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.stats.nodes > 0, "{row:?}");
            assert!(row.stats.interpretations > 0, "{row:?}");
            assert_eq!(row.cells().len(), CHECKER_STATS_HEADER.len());
        }
    }

    #[test]
    fn b5_shape_partitioning_reduces_nodes_at_least_2x() {
        let rows = partition_speedup_rows(&PARTITION_SEEDS);
        for row in &rows {
            assert!(row.verdicts_agree, "{row:?}");
            assert!(row.part.nodes > 0, "{row:?}");
            assert_eq!(row.cells().len(), PARTITION_HEADER.len());
        }
        // The acceptance bar: every multi-key KvStore workload shows at
        // least a 2x node-count reduction…
        for row in rows
            .iter()
            .filter(|r| r.scenario.starts_with("kv keys=") && r.keys > 1)
        {
            assert!(
                row.node_ratio >= 2.0,
                "expected >= 2x node reduction: {row:?}"
            );
            assert!(row.partitions > 1, "{row:?}");
        }
        // …while the hostile controls collapse to a single partition and
        // pay (essentially) nothing.
        let hostile: Vec<_> = rows
            .iter()
            .filter(|r| r.scenario.contains("hostile"))
            .collect();
        assert_eq!(hostile.len(), 2);
        for row in hostile {
            assert_eq!(row.partitions, 1, "{row:?}");
            assert!((row.node_ratio - 1.0).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn b10_shape_certified_keyed_paths_beat_monolithic_on_phase_traces() {
        let rows = phase_partition_rows(&PHASE_SEEDS);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.verdicts_agree, "{row:?}");
            assert!(row.stream_agrees, "{row:?}");
            // The certificate's contract: the keyed runtime never
            // abandons the decomposition the analyzer proved.
            assert_eq!(row.fallbacks, 0, "{row:?}");
            assert!(row.part.nodes > 0, "{row:?}");
            assert_eq!(row.cells().len(), PHASE_PARTITION_HEADER.len());
        }
        // Multi-key faulty phase traces must show at least a 2x
        // node-count reduction (refutation localizes to the violating
        // class) — the B10 acceptance bar, also gated in release mode by
        // ci/bench_threshold.py.
        for row in rows
            .iter()
            .filter(|r| r.scenario.contains("faulty") && r.keys > 1)
        {
            assert!(
                row.node_ratio > 2.0,
                "expected > 2x node reduction: {row:?}"
            );
            assert!(row.partitions > 1, "{row:?}");
        }
        // The single-class faulty control collapses to one partition and
        // pays (essentially) nothing.
        let hostile = rows
            .iter()
            .find(|r| r.scenario.contains("hostile"))
            .expect("hostile control row");
        assert_eq!(hostile.partitions, 1, "{hostile:?}");
        assert!((hostile.node_ratio - 1.0).abs() < 0.5, "{hostile:?}");
        // Clean phase traces linearize greedily on both paths (responses
        // are in apply order by construction): agreement is the claim
        // there, not node counts.
        for row in rows.iter().filter(|r| r.scenario.contains("clean")) {
            assert!(row.mono.nodes > 0, "{row:?}");
        }
    }

    #[test]
    fn json_report_is_deterministic_and_covers_all_b_series() {
        // B6/B6h's wall-clock columns vary run to run; with the rows
        // fixed, everything else must be bit-reproducible.
        let b6 = streaming_rows_with(&[0], 200);
        let b6h = hostile_rows_with(&[0], 200);
        let b8 = multitenant_rows_with(&[0], 20);
        let b9 = obs_rows_with(&[0], 120);
        let a = bench_report_json_with(&b6, &b6h, &b8, &b9);
        assert_eq!(
            a,
            bench_report_json_with(&b6, &b6h, &b8, &b9),
            "artifact must be reproducible"
        );
        for key in [
            "\"schema\": \"slin-bench/v2\"",
            "\"b1_latency\"",
            "\"b2_crossover\"",
            "\"b2b_contention\"",
            "\"b4b_phase_chain\"",
            "\"b4c_checker_stats\"",
            "\"b5_partition\"",
            "\"b6_streaming\"",
            "\"b6h_hostile\"",
            "\"b8_multitenant\"",
            "\"b9_observability\"",
            "\"b10_phase_partition\"",
            "\"stream_agrees\"",
            "\"fallbacks\"",
            "\"overhead_frac\"",
            "\"archive_event_bound\"",
            "\"queue_depth_peak\"",
            "\"sheds\"",
            "\"memo_hits\"",
            "\"memo_entries\"",
            "\"node_ratio\"",
            "\"events_per_sec\"",
            "\"p99_ingest_us\"",
            "\"epoch_cuts\"",
            "\"peak_multiset_nodes\"",
        ] {
            assert!(a.contains(key), "missing {key} in artifact");
        }
    }

    #[test]
    fn b6h_hostile_rows_stay_exact_and_bounded() {
        let steps = 420;
        let rows = hostile_rows_with(&[0], steps);
        assert_eq!(rows.len(), 2 * HOSTILE_WINDOWS.len());
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.events > 0, "{row:?}");
            assert_eq!(row.lossy_cuts, 0, "exact mode must never go lossy: {row:?}");
            assert_eq!(row.cells().len(), HOSTILE_HEADER.len());
        }
        // The streams are genuinely never-quiescent: non-quiescent epoch
        // cuts fire, and events retire, in every row of the sweep.
        for row in &rows {
            assert!(row.epoch_cuts > 0, "no epoch cut: {row:?}");
            assert!(row.retired_events > 0, "nothing retired: {row:?}");
        }
        // Deterministic in the seeds: the work/memory columns reproduce.
        let again = hostile_rows_with(&[0], steps);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.search_nodes, b.search_nodes, "{:?}", a.scenario);
            assert_eq!(a.peak_multiset_nodes, b.peak_multiset_nodes);
            assert_eq!(a.peak_live_configs, b.peak_live_configs);
            assert_eq!(a.retired_events, b.retired_events);
            assert_eq!(a.epoch_cuts, b.epoch_cuts);
        }
        // The memory proxy is O(window + alphabet): growing the window
        // across the sweep must not grow the retained state more than
        // linearly.
        for (scenario, _) in super::hostile_bases() {
            let of = |w: usize| {
                rows.iter()
                    .find(|r| r.window == w && r.scenario.starts_with(scenario))
                    .expect("swept window")
            };
            let (small, large) = (of(HOSTILE_WINDOWS[0]), of(*HOSTILE_WINDOWS.last().unwrap()));
            let growth = large.peak_multiset_nodes as f64 / small.peak_multiset_nodes.max(1) as f64;
            // The KV alphabet of these streams is ~12 distinct inputs; 16
            // is the additive slack of the linear reference.
            let linear = (large.window as f64 + 16.0) / (small.window as f64 + 16.0);
            assert!(
                growth <= linear * 1.5,
                "{scenario}: memory grew superlinearly in the window \
                 ({} -> {} nodes, {growth:.2}x vs linear {linear:.2}x)",
                small.peak_multiset_nodes,
                large.peak_multiset_nodes,
            );
        }
    }

    #[test]
    fn b6_streams_stay_linearizable_and_report_load_shape() {
        let rows = streaming_rows_with(&[0], 300);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.events > 0 && row.events_per_sec > 0.0, "{row:?}");
            assert!(row.p99_ingest_us >= 0.0, "{row:?}");
            assert_eq!(row.cells().len(), STREAMING_HEADER.len());
        }
        // Shard counts follow the key space; bounded-window GC engages on
        // the single-key (window-saturating) workload.
        assert_eq!(rows[0].shards, 1);
        assert!(rows[2].shards > rows[1].shards, "{rows:?}");
        assert!(rows[0].retired_events > 0, "{rows:?}");
    }

    #[test]
    fn b8_daemon_rows_shed_only_when_under_provisioned() {
        let rows = multitenant_rows_with(&[0], 25);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.events > 0 && row.events_per_sec > 0.0, "{row:?}");
            assert!(
                row.queue_depth_peak <= row.queue_capacity,
                "queue bound violated: {row:?}"
            );
            assert_eq!(row.cells().len(), MULTITENANT_HEADER.len());
        }
        // Provisioned daemons never shed; the under-provisioned one must.
        assert_eq!(rows[0].sheds, 0, "{:?}", rows[0]);
        assert_eq!(rows[1].sheds, 0, "{:?}", rows[1]);
        assert!(rows[2].sheds > 0, "saturation must shed: {:?}", rows[2]);
        assert!(rows[2].shed_tenants > 0);
    }

    #[test]
    fn b9_obs_rows_report_overhead_and_bound_the_archive() {
        let rows = obs_rows_with(&[0], 300);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.events > 0, "{row:?}");
            assert!(row.noop_events_per_sec > 0.0, "{row:?}");
            assert!(row.instrumented_events_per_sec > 0.0, "{row:?}");
            // The 5% gate lives in ci/bench_threshold.py against the
            // release-mode artifact; debug mode only sanity-bounds the
            // ratio (finite, not a multiple of the noop time).
            assert!(row.overhead_frac.is_finite(), "{row:?}");
            assert!(row.overhead_frac < 3.0, "{row:?}");
            assert_eq!(row.cells().len(), OBS_HEADER.len());
        }
        // The pure-overhead rows keep archival fully off…
        for row in rows.iter().filter(|r| r.archive_windows == 0) {
            assert!(!row.reconstructed, "{row:?}");
            assert_eq!(row.archived_events, 0, "{row:?}");
            assert_eq!(row.archive_event_bound, 0, "{row:?}");
        }
        // …and the archival row reconstructs within its memory bound.
        let archive = rows
            .iter()
            .find(|r| r.archive_windows > 0)
            .expect("archival row");
        assert!(archive.reconstructed, "{archive:?}");
        assert!(archive.archived_events > 0, "{archive:?}");
        assert!(
            archive.archived_events <= archive.archive_event_bound,
            "archive bound violated: {archive:?}"
        );
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let s = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
