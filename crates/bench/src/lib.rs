//! Benchmark harness reproducing the paper's performance claims.
//!
//! The paper has no empirical tables — its performance statements are
//! analytic (Quorum decides in 2 message delays versus Paxos's 3+;
//! registers beat CAS when there is no contention; modular phases avoid the
//! O(n²) ad-hoc switching cases). This crate turns each claim into a
//! measurable experiment:
//!
//! * [`latency_rows`] — **B1**: fast-path vs backup decision latency in
//!   message delays, across server counts;
//! * [`crossover_rows`] — **B2**: composed protocol vs pure Paxos as the
//!   message-loss rate grows (where speculation stops paying off);
//! * [`contention_rows`] — **B2b**: the same crossover under client
//!   contention;
//! * [`phase_chain_rows`] — **B4b**: latency and message cost of chaining
//!   extra fast phases;
//! * [`checker_stats_rows`] — **B4c**: the shared checker engine's
//!   [`SearchStats`] (nodes, memoisation, interpretation counts) over
//!   simulated runs — the practicality counterpart of the timing data;
//! * checker scaling data for **B4** lives in the `checkers` bench.
//!
//! Every function returns plain rows so the experiment tables can be
//! regenerated (`cargo bench -p slin-bench`) and asserted on in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slin_consensus::harness::{run_scenario, verify_run, Scenario};
use slin_core::engine::SearchStats;
use slin_sim::Time;

/// One row of the fast-path latency table (B1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyRow {
    /// Number of servers.
    pub servers: usize,
    /// Fast-path (Quorum + Backup) decision latency, message delays.
    pub composed: Option<Time>,
    /// Pure-Paxos decision latency, message delays.
    pub paxos: Option<Time>,
    /// Messages sent by the composed protocol.
    pub composed_msgs: usize,
    /// Messages sent by pure Paxos.
    pub paxos_msgs: usize,
}

/// B1: single fault-free client, unit delays — the paper's headline
/// "2 message delays instead of 3+".
pub fn latency_rows(server_counts: &[usize]) -> Vec<LatencyRow> {
    server_counts
        .iter()
        .map(|&servers| {
            let fast = run_scenario(&Scenario::fault_free(servers, &[(5, 0)]));
            let slow = run_scenario(&Scenario::pure_paxos(servers, &[(5, 0)]));
            LatencyRow {
                servers,
                composed: fast.latencies[0].1,
                paxos: slow.latencies[0].1,
                composed_msgs: fast.messages,
                paxos_msgs: slow.messages,
            }
        })
        .collect()
}

/// One row of a crossover sweep (B2).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    /// The swept parameter (drop probability ×100, or client count).
    pub x: u64,
    /// Mean decision latency of the composed protocol over the seeds
    /// (undecided runs excluded).
    pub composed_mean: f64,
    /// Mean decision latency of pure Paxos.
    pub paxos_mean: f64,
    /// Fraction of composed-protocol clients that needed the backup.
    pub fallback_rate: f64,
}

fn mean_latency(outs: &[slin_consensus::harness::RunOutcome]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for o in outs {
        for (_, l) in &o.latencies {
            if let Some(l) = l {
                sum += *l as f64;
                n += 1;
            }
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

fn fallback_rate(outs: &[slin_consensus::harness::RunOutcome]) -> f64 {
    let mut switched = 0usize;
    let mut total = 0usize;
    for o in outs {
        total += o.latencies.len();
        switched += o
            .trace
            .iter()
            .filter(|a| a.is_switch() && a.phase().value() == 2)
            .count();
    }
    if total == 0 {
        0.0
    } else {
        switched as f64 / total as f64
    }
}

/// B2: decision latency as the message-drop probability grows, composed
/// protocol vs pure Paxos (3 servers, 1 client, `seeds` runs per point).
pub fn crossover_rows(drop_percents: &[u64], seeds: u64) -> Vec<CrossoverRow> {
    drop_percents
        .iter()
        .map(|&pct| {
            let drop = pct as f64 / 100.0;
            let composed: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::fault_free(3, &[(7, 0)]).with_loss(drop, s)))
                .collect();
            let paxos: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::pure_paxos(3, &[(7, 0)]).with_loss(drop, s)))
                .collect();
            CrossoverRow {
                x: pct,
                composed_mean: mean_latency(&composed),
                paxos_mean: mean_latency(&paxos),
                fallback_rate: fallback_rate(&composed),
            }
        })
        .collect()
}

/// B2b: decision latency as the number of contending clients grows
/// (3 servers, random delays 1–4).
pub fn contention_rows(client_counts: &[u64], seeds: u64) -> Vec<CrossoverRow> {
    client_counts
        .iter()
        .map(|&k| {
            let values: Vec<u64> = (1..=k).collect();
            let composed: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &values, s)))
                .collect();
            let paxos: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &values, s).with_fast_phases(0)))
                .collect();
            CrossoverRow {
                x: k,
                composed_mean: mean_latency(&composed),
                paxos_mean: mean_latency(&paxos),
                fallback_rate: fallback_rate(&composed),
            }
        })
        .collect()
}

/// One row of the phase-chain table (B4b).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRow {
    /// Number of Quorum fast phases before the Paxos backup.
    pub fast_phases: u32,
    /// Mean decision latency under contention.
    pub latency_mean: f64,
    /// Mean messages per run.
    pub messages_mean: f64,
    /// Fault-free (sequential) latency — chaining must not slow the
    /// common case.
    pub fault_free_latency: Option<Time>,
}

/// B4b: the cost of chaining additional speculation phases.
pub fn phase_chain_rows(chain_lengths: &[u32], seeds: u64) -> Vec<ChainRow> {
    chain_lengths
        .iter()
        .map(|&fast| {
            let outs: Vec<_> = (0..seeds)
                .map(|s| run_scenario(&Scenario::contended(3, &[1, 2], s).with_fast_phases(fast)))
                .collect();
            let msgs = outs.iter().map(|o| o.messages as f64).sum::<f64>() / seeds as f64;
            let fault_free =
                run_scenario(&Scenario::fault_free(3, &[(5, 0)]).with_fast_phases(fast));
            ChainRow {
                fast_phases: fast,
                latency_mean: mean_latency(&outs),
                messages_mean: msgs,
                fault_free_latency: fault_free.latencies[0].1,
            }
        })
        .collect()
}

/// One row of the checker-practicality table (B4c): the engine counters
/// behind one verified scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerStatsRow {
    /// Human-readable scenario label.
    pub scenario: String,
    /// Whether every phase and the object projection verified.
    pub ok: bool,
    /// Whether a failure was a resource limit (budget / interpretation
    /// cap) rather than a genuine violation.
    pub resource_limited: bool,
    /// Aggregated engine counters for the whole verification.
    pub stats: SearchStats,
}

impl CheckerStatsRow {
    /// The table cells printed by the `checkers` bench.
    pub fn cells(&self) -> Vec<String> {
        let verdict = if self.ok {
            "ok"
        } else if self.resource_limited {
            "limit"
        } else {
            "FAIL"
        };
        vec![
            self.scenario.clone(),
            verdict.to_string(),
            self.stats.interpretations.to_string(),
            self.stats.nodes.to_string(),
            self.stats.memo_entries.to_string(),
            self.stats.memo_hits.to_string(),
            self.stats.leaf_checks.to_string(),
        ]
    }
}

/// The header matching [`CheckerStatsRow::cells`].
pub const CHECKER_STATS_HEADER: [&str; 7] = [
    "scenario", "verdict", "interps", "nodes", "memo", "hits", "leaves",
];

/// B4c: engine statistics for verifying contended runs (3 servers, the
/// given seeds) and one 3-phase chain — what the speculative checker
/// actually costs on protocol-generated traces.
pub fn checker_stats_rows(seeds: &[u64]) -> Vec<CheckerStatsRow> {
    let mut rows: Vec<CheckerStatsRow> = seeds
        .iter()
        .map(|&seed| {
            let scenario = Scenario::contended(3, &[1, 2], seed);
            let v = verify_run(&scenario, &run_scenario(&scenario));
            CheckerStatsRow {
                scenario: format!("contended(3, [1,2], seed {seed})"),
                ok: v.all_ok(),
                resource_limited: v.resource_limited(),
                stats: v.stats,
            }
        })
        .collect();
    let chained = Scenario::contended(3, &[1, 2], 1).with_fast_phases(3);
    let v = verify_run(&chained, &run_scenario(&chained));
    rows.push(CheckerStatsRow {
        scenario: "contended, 3 fast phases".to_string(),
        ok: v.all_ok(),
        resource_limited: v.resource_limited(),
        stats: v.stats,
    });
    rows
}

/// Renders rows as an aligned text table (used by the benches to print the
/// regenerated experiment tables).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b1_shape_fast_path_beats_paxos_everywhere() {
        for row in latency_rows(&[3, 5, 7]) {
            let (Some(fast), Some(slow)) = (row.composed, row.paxos) else {
                panic!("undecided run in fault-free scenario: {row:?}");
            };
            assert_eq!(fast, 2, "n={}", row.servers);
            assert!(slow >= 3, "n={}", row.servers);
            assert!(fast < slow, "n={}", row.servers);
        }
    }

    #[test]
    fn b2_shape_loss_erodes_the_fast_path() {
        let rows = crossover_rows(&[0, 30], 12);
        // Without loss the composed protocol is strictly faster…
        assert!(rows[0].composed_mean < rows[0].paxos_mean, "{rows:?}");
        assert_eq!(rows[0].fallback_rate, 0.0);
        // …and heavy loss triggers fallbacks, degrading it toward (or past)
        // pure Paxos.
        assert!(rows[1].fallback_rate > 0.0, "{rows:?}");
        assert!(
            rows[1].composed_mean > rows[0].composed_mean,
            "loss should increase composed latency: {rows:?}"
        );
    }

    #[test]
    fn b4b_shape_chains_keep_the_common_case_fast() {
        let rows = phase_chain_rows(&[1, 2, 3], 8);
        for row in &rows {
            // The fault-free fast path stays at 2 message delays no matter
            // how long the chain — added phases are pay-per-use.
            assert_eq!(row.fault_free_latency, Some(2), "{row:?}");
        }
        // Chaining stays linear, never quadratic: a retried fast phase can
        // even *save* messages versus falling straight into Paxos (transient
        // contention resolves), so we only bound the growth.
        assert!(
            rows[2].messages_mean <= rows[0].messages_mean * 2.0,
            "{rows:?}"
        );
    }

    #[test]
    fn b4c_engine_stats_rows_verify_and_count() {
        let rows = checker_stats_rows(&[0, 7]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.ok, "{row:?}");
            assert!(row.stats.nodes > 0, "{row:?}");
            assert!(row.stats.interpretations > 0, "{row:?}");
            assert_eq!(row.cells().len(), CHECKER_STATS_HEADER.len());
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let s = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
