//! A minimal JSON value type and serializer.
//!
//! The bench pipeline must emit machine-readable artifacts in an
//! environment with no crates.io access, so this module hand-rolls the
//! (tiny) subset of JSON the report needs: objects, arrays, strings,
//! integers, floats, booleans and null. Non-finite floats serialize as
//! `null` (JSON has no NaN), and string escaping covers the control
//! characters plus `"` and `\`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a fraction).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (insertion order preserved, so
    /// output is deterministic).
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Convenience constructor for a `usize` counter.
    pub fn count(n: usize) -> Json {
        Json::Int(n as i64)
    }

    /// Serializes the value with two-space indentation and a trailing
    /// newline (a stable, diff-friendly artifact format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) if !x.is_finite() => out.push_str("null"),
            Json::Float(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_deterministically() {
        let v = Json::Obj(vec![
            ("name", Json::Str("b5".into())),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Float(2.5)])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"b5\""));
        assert!(s.contains("\"empty\": []"));
        assert_eq!(s, v.render(), "rendering is deterministic");
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Float(2.0).render(), "2\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }
}
