//! Deliberately unsound partitioners — negative fixtures for the analyzer.
//!
//! Each fixture claims independence classes for an ADT that does **not**
//! factor as a product over them, so [`crate::certify`] must reject every
//! one with a concrete counterexample. They double as the discriminators
//! the sampled proptest in `tests/tests/partitioner_contract.rs` uses to
//! prove the contract checker has teeth.

use slin_adt::{
    ConsInput, Consensus, Counter, CounterInput, Partitioner, Queue, QueueInput, Stack, StackInput,
};

/// Splits the (monolithic) [`Counter`] by operation kind: increments to
/// key 0, reads to key 1. Unsound — a read's output depends on every
/// increment, so the classes interact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BogusCounterPartitioner;

impl Partitioner<Counter> for BogusCounterPartitioner {
    type Key = u8;

    fn key_of(&self, input: &CounterInput) -> Option<u8> {
        Some(match input {
            CounterInput::Increment => 0,
            CounterInput::Read => 1,
        })
    }
}

/// Keys [`Queue`] inputs by enqueued value (dequeues to key 0). Unsound —
/// FIFO order couples every element.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueValuePartitioner;

impl Partitioner<Queue> for QueueValuePartitioner {
    type Key = u64;

    fn key_of(&self, input: &QueueInput) -> Option<u64> {
        Some(match input {
            QueueInput::Enqueue(v) => *v,
            QueueInput::Dequeue => 0,
        })
    }
}

/// Keys [`Stack`] inputs by pushed value (pops to key 0). Unsound — LIFO
/// order couples every element.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackValuePartitioner;

impl Partitioner<Stack> for StackValuePartitioner {
    type Key = u64;

    fn key_of(&self, input: &StackInput) -> Option<u64> {
        Some(match input {
            StackInput::Push(v) => *v,
            StackInput::Pop => 0,
        })
    }
}

/// Keys [`Consensus`] proposals by proposed value. Unsound — the first
/// proposal decides for everyone, the canonical non-local ADT (paper
/// Figure 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsProposalPartitioner;

impl Partitioner<Consensus> for ConsProposalPartitioner {
    type Key = u64;

    fn key_of(&self, input: &ConsInput) -> Option<u64> {
        Some(input.value().get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{certify, AnalyzeConfig, AnalyzeFailure};
    use slin_adt::{Queue, Stack};

    fn rejected<T, P>(adt: &T, p: &P) -> usize
    where
        T: slin_adt::DomainSpec + std::fmt::Debug,
        P: Partitioner<T>,
    {
        match certify(adt, p, &AnalyzeConfig::default()) {
            Err(AnalyzeFailure::Unsound(cex)) => cex.len(),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn every_fixture_is_rejected_with_a_short_counterexample() {
        assert!(rejected(&Counter, &BogusCounterPartitioner) <= 4);
        assert!(rejected(&Queue, &QueueValuePartitioner) <= 4);
        assert!(rejected(&Stack, &StackValuePartitioner) <= 4);
        assert!(rejected(&Consensus, &ConsProposalPartitioner) <= 4);
    }
}
