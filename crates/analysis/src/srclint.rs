//! Source-level concurrency-policy lint for the workspace.
//!
//! `slin-analyze --lint-src` scans every Rust source under `crates/` and
//! enforces the repo's concurrency policy statically, as a blocking CI
//! step. The rules are deliberately textual — line-oriented, comment- and
//! test-region-aware, no parser — so the pass stays dependency-free and
//! auditable; each rule is tuned to hold on the tree with **zero
//! waivers**, so any hit is a regression.
//!
//! Rules (see [`RULES`]):
//!
//! * `forbid-unsafe` — every crate root (`crates/**/src/lib.rs`) carries
//!   `#![forbid(unsafe_code)]`;
//! * `hot-path-unwrap` — no `.unwrap()` and no non-literal `.expect(`
//!   in the ingest hot paths (`crates/daemon/src`, `crates/monitor/src`,
//!   `crates/core/src/stream`) outside test regions;
//! * `lock-order` — the workspace's known mutexes are acquired in one
//!   global order within any function (registry shards → span ring →
//!   monitor status cache → recorder events), so lock cycles cannot be
//!   introduced silently;
//! * `deprecated-gate` — calls to the legacy `check_*`/`metrics_json`
//!   wrapper methods outside tests must sit under an explicit
//!   `#[allow(deprecated)]`, keeping migrations one-way;
//! * `no-debug-macros` — `dbg!`, `todo!`, and `unimplemented!` never ship
//!   outside `#[cfg(test)]` regions (stderr noise in daemons; reachable
//!   panics in checkers).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers with one-line descriptions (for `--help` and docs).
pub const RULES: &[(&str, &str)] = &[
    (
        "forbid-unsafe",
        "every crates/**/src/lib.rs must declare #![forbid(unsafe_code)]",
    ),
    (
        "hot-path-unwrap",
        "no .unwrap() / non-literal .expect( in daemon, monitor, or streaming ingest paths",
    ),
    (
        "lock-order",
        "known mutex families must be acquired in the global order within a function",
    ),
    (
        "deprecated-gate",
        "legacy wrapper-method calls outside tests require #[allow(deprecated)]",
    ),
    (
        "no-debug-macros",
        "dbg!/todo!/unimplemented! are banned outside #[cfg(test)] regions",
    ),
];

/// Development-only macros that must never ship in non-test code: `dbg`
/// leaks stderr noise into long-running daemons, `todo`/`unimplemented`
/// turn a reachable path into a panic. Stored without the `!` so this
/// file's own constant does not trip the rule; matching appends it.
const DEBUG_MACROS: &[&str] = &["dbg", "todo", "unimplemented"];

/// Directories whose non-test code is an ingest hot path.
const HOT_PATHS: &[&str] = &[
    "crates/daemon/src/",
    "crates/monitor/src/",
    "crates/core/src/stream/",
];

/// Known mutex families, in their global acquisition order. A `.lock()`
/// whose receiver window matches `pattern` belongs to the family.
const LOCK_ORDER: &[(&str, &str)] = &[
    ("registry-shard", "shards"),
    ("span-ring", "self.ring"),
    ("status-cache", "status_cache"),
    ("recorder-events", "self.events"),
];

/// Legacy wrapper methods kept only as `#[deprecated]` shims.
const LEGACY_METHODS: &[&str] = &[
    "check_with_stats",
    "check_sequential",
    "check_partitioned_with_report",
    "check_partitioned",
    "check_split_with_report",
    "metrics_json",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintHit {
    /// Rule identifier (see [`RULES`]).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LintHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints every Rust source under `<root>/crates`. Returns all hits,
/// deterministically ordered (sorted file walk, then line order).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<LintHit>> {
    let mut hits = Vec::new();
    for path in rust_sources(&root.join("crates"))? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // Integration tests and benches are not production code.
        if rel.contains("/tests/") || rel.contains("/benches/") {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        lint_file(&rel, &source, &mut hits);
    }
    Ok(hits)
}

/// All `.rs` files under `dir`, sorted for determinism, skipping `target`.
fn rust_sources(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                if entry.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(entry);
            } else if entry.extension().is_some_and(|e| e == "rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Per-line facts computed in one pass: comment-stripped text and whether
/// the line sits inside a `#[cfg(test)]` region.
struct Line<'a> {
    code: String,
    raw: &'a str,
    in_test: bool,
}

/// Strips `//` comments (string-literal aware, heuristically) and marks
/// `#[cfg(test)]`-gated regions by brace tracking.
fn preprocess(source: &str) -> Vec<Line<'_>> {
    let mut lines = Vec::new();
    let mut test_depth: Option<usize> = None; // brace depth where the region opened
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    for raw in source.lines() {
        let code = strip_comment(raw);
        let in_test = test_depth.is_some();
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && opens > 0 {
            // The item the attribute gates (a `mod tests`, a test-only
            // impl, …) opens here; the region ends when depth returns.
            test_depth.get_or_insert(depth);
            pending_cfg_test = false;
        } else if pending_cfg_test && !code.trim().is_empty() && !code.trim().starts_with("#[") {
            pending_cfg_test = false; // attribute gated a single line item
        }
        depth = (depth + opens).saturating_sub(closes);
        if let Some(open_depth) = test_depth {
            if depth <= open_depth {
                test_depth = None;
            }
        }
        lines.push(Line { code, raw, in_test });
    }
    lines
}

/// Blanks the contents of string literals (escape-aware), so rules about
/// code tokens ignore matches inside messages and doc examples.
fn mask_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_str = false;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                out.push(' ');
                if chars.next().is_some() {
                    out.push(' ');
                }
            }
            '"' => {
                in_str = !in_str;
                out.push('"');
            }
            _ if in_str => out.push(' '),
            _ => out.push(c),
        }
    }
    out
}

/// Cuts a line at the first `//` that is not inside a string literal.
fn strip_comment(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return line[..i].to_string();
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

fn lint_file(rel: &str, source: &str, hits: &mut Vec<LintHit>) {
    let lines = preprocess(source);

    // Rule: forbid-unsafe — crate roots must forbid unsafe code.
    if rel.starts_with("crates/") && rel.ends_with("/src/lib.rs") {
        let has = lines.iter().any(|l| l.code.contains("forbid(unsafe_code)"));
        if !has {
            hits.push(LintHit {
                rule: "forbid-unsafe",
                file: rel.to_string(),
                line: 0,
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }

    // Rule: hot-path-unwrap — panicking extractors are banned in ingest
    // hot paths; .expect( is allowed only with an immediate literal
    // invariant message.
    if HOT_PATHS.iter().any(|p| rel.starts_with(p)) {
        for (idx, l) in lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            if l.code.contains(".unwrap()") {
                hits.push(LintHit {
                    rule: "hot-path-unwrap",
                    file: rel.to_string(),
                    line: idx + 1,
                    message: ".unwrap() in an ingest hot path (return a typed error instead)"
                        .to_string(),
                });
            }
            if let Some(pos) = l.code.find(".expect(") {
                let after = &l.code[pos + ".expect(".len()..];
                if !after.trim_start().starts_with('"') {
                    hits.push(LintHit {
                        rule: "hot-path-unwrap",
                        file: rel.to_string(),
                        line: idx + 1,
                        message: ".expect( without a literal invariant message in an ingest \
                                  hot path"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Rule: lock-order — within one function, known mutex families must
    // be acquired in non-decreasing global order.
    let mut watermark: Option<(usize, &str)> = None;
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if l.code.contains("fn ") && l.code.contains('(') {
            watermark = None; // new function scope
        }
        if !l.code.contains(".lock()") {
            continue;
        }
        // The receiver may sit on the previous line(s) of a method chain.
        let lo = idx.saturating_sub(2);
        let window: String = lines[lo..=idx]
            .iter()
            .map(|w| w.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let family = LOCK_ORDER
            .iter()
            .enumerate()
            .find(|(_, (_, pat))| window.contains(pat));
        if let Some((rank, (name, _))) = family {
            if let Some((held_rank, held_name)) = watermark {
                if rank < held_rank {
                    hits.push(LintHit {
                        rule: "lock-order",
                        file: rel.to_string(),
                        line: idx + 1,
                        message: format!(
                            "acquires `{name}` after `{held_name}` — global order is \
                             registry-shard < span-ring < status-cache < recorder-events"
                        ),
                    });
                }
            }
            if watermark.is_none_or(|(held_rank, _)| rank > held_rank) {
                watermark = Some((rank, name));
            }
        }
    }

    // Rule: no-debug-macros — development-only macros are banned outside
    // test regions (comments were already stripped by `preprocess`).
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let masked = mask_strings(&l.code);
        for mac in DEBUG_MACROS {
            // Require a non-identifier character before the match so
            // `my_dbg!` or a `dbg` path segment does not trip the rule;
            // string-literal contents are masked out above.
            let bang = format!("{mac}!");
            let found = masked.match_indices(&bang).any(|(pos, _)| {
                pos == 0
                    || !masked[..pos]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
            });
            if found {
                hits.push(LintHit {
                    rule: "no-debug-macros",
                    file: rel.to_string(),
                    line: idx + 1,
                    message: format!("`{bang}` outside a #[cfg(test)] region"),
                });
                break; // one hit per line is enough
            }
        }
    }

    // Rule: deprecated-gate — legacy wrapper-method calls outside tests
    // must carry #[allow(deprecated)] within the preceding lines.
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        // Skip definitions (the shims themselves) and attributes.
        if l.code.contains("fn ") || l.code.trim_start().starts_with("#[") {
            continue;
        }
        for name in LEGACY_METHODS {
            if !l.code.contains(&format!(".{name}(")) {
                continue;
            }
            let lo = idx.saturating_sub(30);
            let gated = lines[lo..idx]
                .iter()
                .any(|w| w.raw.contains("allow(deprecated)"));
            if !gated {
                hits.push(LintHit {
                    rule: "deprecated-gate",
                    file: rel.to_string(),
                    line: idx + 1,
                    message: format!(
                        "call to legacy `.{name}(` without a nearby #[allow(deprecated)]"
                    ),
                });
            }
            break; // one hit per line is enough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<LintHit> {
        let mut hits = Vec::new();
        lint_file(rel, src, &mut hits);
        hits
    }

    #[test]
    fn missing_forbid_unsafe_is_flagged_on_crate_roots_only() {
        let hits = lint_str("crates/foo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "forbid-unsafe");
        assert!(lint_str("crates/foo/src/other.rs", "pub fn f() {}\n").is_empty());
        assert!(lint_str(
            "crates/foo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }

    #[test]
    fn hot_path_unwrap_skips_tests_and_comments_but_catches_code() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // x.unwrap() in a comment is fine\n    \
                   x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 \
                   {\n        x.unwrap()\n    }\n}\n";
        let hits = lint_str("crates/daemon/src/foo.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert!(lint_str("crates/adt/src/foo.rs", src).is_empty(), "scope");
    }

    #[test]
    fn expect_requires_a_literal_message_in_hot_paths() {
        let ok = "fn f() {\n    m.lock().expect(\"poisoned\");\n}\n";
        assert!(lint_str("crates/monitor/src/foo.rs", ok).is_empty());
        let bad = "fn f() {\n    m.lock().expect(msg);\n}\n";
        let hits = lint_str("crates/monitor/src/foo.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "hot-path-unwrap");
    }

    #[test]
    fn lock_order_flags_inversions_within_one_function() {
        let bad = "fn f(&self) {\n    let a = self.events.lock();\n    let b = \
                   self.shards[0].lock();\n}\n";
        let hits = lint_str("crates/obs/src/foo.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "lock-order");
        // The same pair in order, or split across functions, is fine.
        let ok = "fn f(&self) {\n    let a = self.shards[0].lock();\n    let b = \
                  self.events.lock();\n}\nfn g(&self) {\n    let a = self.events.lock();\n}\n\
                  fn h(&self) {\n    let b = self.shards[0].lock();\n}\n";
        assert!(lint_str("crates/obs/src/foo.rs", ok).is_empty());
    }

    #[test]
    fn deprecated_gate_requires_allow_near_legacy_calls() {
        let bad = "fn caller(c: &C) {\n    let v = c.check_sequential(&t);\n}\n";
        let hits = lint_str("crates/core/src/foo.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "deprecated-gate");
        let ok = "#[allow(deprecated)] // oracle\nfn caller(c: &C) {\n    let v = \
                  c.check_sequential(&t);\n}\n";
        assert!(lint_str("crates/core/src/foo.rs", ok).is_empty());
        // Free functions with the same name are not the legacy methods.
        let free = "fn caller(c: &C) {\n    let v = model::check_partitioned(c, p, t);\n}\n";
        assert!(lint_str("crates/core/src/foo.rs", free).is_empty());
    }

    #[test]
    fn debug_macros_are_banned_outside_test_regions() {
        let bad = "fn f(x: u8) -> u8 {\n    dbg!(x);\n    todo!()\n}\n";
        let hits = lint_str("crates/adt/src/foo.rs", bad);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == "no-debug-macros"));
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
        // Test regions and comments are exempt; lookalike identifiers and
        // other macros containing the name are not matches.
        let ok = "fn f() {\n    // a dbg!(x) in a comment\n    my_dbg!(1);\n    \
                  log(\"never todo!() here\");\n}\n\
                  #[cfg(test)]\nmod tests {\n    fn g() {\n        dbg!(1);\n        \
                  unimplemented!()\n    }\n}\n";
        assert!(lint_str("crates/adt/src/foo.rs", ok).is_empty());
        let unimpl = "fn f() {\n    unimplemented!(\"later\")\n}\n";
        let hits = lint_str("crates/core/src/foo.rs", unimpl);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unimplemented!"));
    }

    #[test]
    fn the_workspace_itself_lints_clean() {
        // CARGO_MANIFEST_DIR = <root>/crates/analysis.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let hits = lint_workspace(root).expect("workspace readable");
        assert!(hits.is_empty(), "lint hits: {hits:#?}");
    }
}
