//! `slin-analyze` — certify shipped partitioners and lint the workspace.
//!
//! ```text
//! slin-analyze --all                 # certify shipped pairs, write analysis/certs/
//! slin-analyze --all --check        # regenerate and compare, no writes
//! slin-analyze --lint-src            # run the concurrency lint
//! slin-analyze --all --lint-src      # what CI runs (blocking)
//! ```
//!
//! Options: `--depth N` (exploration depth, default 4), `--out DIR`
//! (certificate directory, default `<root>/analysis/certs`), `--root DIR`
//! (workspace root, default inferred from the crate location).
//!
//! Exit status is non-zero if any shipped partitioner fails to certify,
//! any negative fixture is *not* rejected, a `--check` comparison drifts,
//! or the lint reports a hit.

use slin_adt::{
    CounterVecPartitioner, CounterVector, KvKeyPartitioner, KvStore, RegArrayPartitioner,
    RegisterArray, Set, SetElemPartitioner,
};
use slin_analysis::fixtures::{
    BogusCounterPartitioner, ConsProposalPartitioner, QueueValuePartitioner, StackValuePartitioner,
};
use slin_analysis::{
    certify, certify_switch, lint_workspace, AnalyzeConfig, AnalyzeFailure, Certificate,
    SwitchCert, SwitchFailure, RULES,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    all: bool,
    lint_src: bool,
    check: bool,
    depth: usize,
    out: Option<PathBuf>,
    root: PathBuf,
}

fn default_root() -> PathBuf {
    // <root>/crates/analysis -> <root>
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        lint_src: false,
        check: false,
        depth: AnalyzeConfig::default().depth,
        out: None,
        root: default_root(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--lint-src" => opts.lint_src = true,
            "--check" => opts.check = true,
            "--depth" => {
                let v = args.next().ok_or("--depth needs a value")?;
                opts.depth = v.parse().map_err(|_| format!("bad depth `{v}`"))?;
            }
            "--out" => opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--root" => opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if !opts.all && !opts.lint_src {
        return Err("nothing to do: pass --all and/or --lint-src (try --help)".to_string());
    }
    Ok(opts)
}

fn print_help() {
    println!("slin-analyze: partitioner certification + workspace concurrency lint");
    println!();
    println!("  --all        certify shipped partitioners, reject negative fixtures,");
    println!("               write certificates to the --out directory");
    println!("  --check      with --all: compare regenerated certificates against the");
    println!("               committed ones instead of writing");
    println!("  --lint-src   lint crates/ for the repo concurrency policy");
    println!("  --depth N    exploration depth (default 4)");
    println!("  --out DIR    certificate directory (default <root>/analysis/certs)");
    println!("  --root DIR   workspace root (default: inferred)");
    println!();
    println!("lint rules:");
    for (rule, desc) in RULES {
        println!("  {rule:<18} {desc}");
    }
}

/// Runs one positive certification, returning the certificate on success.
fn positive<T, P>(adt: &T, p: &P, cfg: &AnalyzeConfig, failures: &mut u32) -> Option<Certificate>
where
    T: slin_adt::DomainSpec,
    P: slin_adt::Partitioner<T>,
{
    match certify(adt, p, cfg) {
        Ok(cert) => {
            println!(
                "  certified {} / {} (depth {}, {} states, {} checks) {}",
                cert.adt,
                cert.partitioner,
                cert.depth,
                cert.states,
                cert.projection_checks + cert.commutation_checks,
                cert.content_hash,
            );
            Some(cert)
        }
        Err(AnalyzeFailure::Unsound(cex)) => {
            *failures += 1;
            eprintln!("  FAILED to certify: {}", cex.render());
            None
        }
        Err(AnalyzeFailure::StateSpaceExceeded { explored }) => {
            *failures += 1;
            eprintln!("  FAILED to certify: state space exceeded ({explored} signatures)");
            None
        }
    }
}

/// Runs one negative fixture, which must be rejected.
fn negative<T, P>(adt: &T, p: &P, cfg: &AnalyzeConfig, failures: &mut u32)
where
    T: slin_adt::DomainSpec,
    P: slin_adt::Partitioner<T>,
{
    use slin_analysis::short_type_name;
    match certify(adt, p, cfg) {
        Err(AnalyzeFailure::Unsound(cex)) => {
            println!(
                "  rejected  {} / {} (counterexample of {} inputs)",
                short_type_name::<T>(),
                short_type_name::<P>(),
                cex.len(),
            );
        }
        Ok(_) => {
            *failures += 1;
            eprintln!(
                "  FAILED: unsound fixture {} / {} was certified",
                short_type_name::<T>(),
                short_type_name::<P>(),
            );
        }
        Err(AnalyzeFailure::StateSpaceExceeded { explored }) => {
            *failures += 1;
            eprintln!(
                "  FAILED: fixture {} / {} exceeded the state space ({explored}) before \
                 a counterexample",
                short_type_name::<T>(),
                short_type_name::<P>(),
            );
        }
    }
}

/// Runs one positive switch-independence certification.
fn switch_positive<T, P>(
    adt: &T,
    p: &P,
    cfg: &AnalyzeConfig,
    failures: &mut u32,
) -> Option<SwitchCert>
where
    T: slin_adt::DomainSpec + std::fmt::Debug,
    P: slin_adt::Partitioner<T>,
{
    match certify_switch(adt, p, cfg) {
        Ok(cert) => {
            println!(
                "  certified {} / {} / {} (depth {}, {} switch values, {} states) {}",
                cert.adt,
                cert.partitioner,
                cert.rinit,
                cert.depth,
                cert.switch_values,
                cert.states,
                cert.content_hash,
            );
            Some(cert)
        }
        Err(SwitchFailure::Unsound(cex)) => {
            *failures += 1;
            eprintln!("  FAILED to certify switch independence: {}", cex.render());
            None
        }
        Err(SwitchFailure::StateSpaceExceeded { explored }) => {
            *failures += 1;
            eprintln!(
                "  FAILED to certify switch independence: state space exceeded \
                 ({explored} signatures)"
            );
            None
        }
    }
}

/// Runs one negative switch-independence fixture, which must be rejected.
fn switch_negative<T, P>(adt: &T, p: &P, cfg: &AnalyzeConfig, failures: &mut u32)
where
    T: slin_adt::DomainSpec + std::fmt::Debug,
    P: slin_adt::Partitioner<T>,
{
    use slin_analysis::short_type_name;
    match certify_switch(adt, p, cfg) {
        Err(SwitchFailure::Unsound(cex)) => {
            println!(
                "  rejected  {} / {} (switch counterexample of {} inputs)",
                short_type_name::<T>(),
                short_type_name::<P>(),
                cex.len(),
            );
        }
        Ok(_) => {
            *failures += 1;
            eprintln!(
                "  FAILED: unsound fixture {} / {} was switch-certified",
                short_type_name::<T>(),
                short_type_name::<P>(),
            );
        }
        Err(SwitchFailure::StateSpaceExceeded { explored }) => {
            *failures += 1;
            eprintln!(
                "  FAILED: fixture {} / {} exceeded the state space ({explored}) before \
                 a switch counterexample",
                short_type_name::<T>(),
                short_type_name::<P>(),
            );
        }
    }
}

fn run_all(opts: &Options) -> Result<u32, std::io::Error> {
    let cfg = AnalyzeConfig {
        depth: opts.depth,
        ..AnalyzeConfig::default()
    };
    let mut failures = 0u32;

    println!("certifying shipped partitioners (depth {}):", cfg.depth);
    let certs: Vec<Certificate> = [
        positive(&KvStore, &KvKeyPartitioner, &cfg, &mut failures),
        positive(&Set, &SetElemPartitioner, &cfg, &mut failures),
        positive(&RegisterArray, &RegArrayPartitioner, &cfg, &mut failures),
        positive(&CounterVector, &CounterVecPartitioner, &cfg, &mut failures),
    ]
    .into_iter()
    .flatten()
    .collect();

    println!(
        "certifying switch independence (slin-cert/v2, depth {}):",
        cfg.depth
    );
    let switch_certs: Vec<SwitchCert> = [
        switch_positive(&KvStore, &KvKeyPartitioner, &cfg, &mut failures),
        switch_positive(&Set, &SetElemPartitioner, &cfg, &mut failures),
        switch_positive(&RegisterArray, &RegArrayPartitioner, &cfg, &mut failures),
        switch_positive(&CounterVector, &CounterVecPartitioner, &cfg, &mut failures),
    ]
    .into_iter()
    .flatten()
    .collect();

    println!("rejecting negative fixtures:");
    negative(
        &slin_adt::Counter,
        &BogusCounterPartitioner,
        &cfg,
        &mut failures,
    );
    negative(
        &slin_adt::Queue,
        &QueueValuePartitioner,
        &cfg,
        &mut failures,
    );
    negative(
        &slin_adt::Stack,
        &StackValuePartitioner,
        &cfg,
        &mut failures,
    );
    negative(
        &slin_adt::Consensus,
        &ConsProposalPartitioner,
        &cfg,
        &mut failures,
    );

    println!("rejecting negative switch fixtures:");
    switch_negative(
        &slin_adt::Counter,
        &BogusCounterPartitioner,
        &cfg,
        &mut failures,
    );
    switch_negative(
        &slin_adt::Queue,
        &QueueValuePartitioner,
        &cfg,
        &mut failures,
    );
    switch_negative(
        &slin_adt::Stack,
        &StackValuePartitioner,
        &cfg,
        &mut failures,
    );
    switch_negative(
        &slin_adt::Consensus,
        &ConsProposalPartitioner,
        &cfg,
        &mut failures,
    );

    let out_dir = opts
        .out
        .clone()
        .unwrap_or_else(|| opts.root.join("analysis").join("certs"));
    let rendered: Vec<(String, String)> = certs
        .iter()
        .map(|c| (c.file_name(), c.to_json()))
        .chain(switch_certs.iter().map(|c| (c.file_name(), c.to_json())))
        .collect();
    if opts.check {
        for (name, json) in &rendered {
            let path = out_dir.join(name);
            let committed = std::fs::read_to_string(&path).unwrap_or_default();
            if committed != *json {
                failures += 1;
                eprintln!(
                    "  STALE certificate {}: regenerate with `slin-analyze --all`",
                    path.display()
                );
            }
        }
        if failures == 0 {
            println!("committed certificates are fresh ({})", out_dir.display());
        }
    } else {
        std::fs::create_dir_all(&out_dir)?;
        for (name, json) in &rendered {
            std::fs::write(out_dir.join(name), json)?;
        }
        println!(
            "wrote {} certificates to {}",
            rendered.len(),
            out_dir.display()
        );
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("slin-analyze: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0u32;
    if opts.all {
        match run_all(&opts) {
            Ok(n) => failures += n,
            Err(e) => {
                eprintln!("slin-analyze: i/o error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.lint_src {
        match lint_workspace(&opts.root) {
            Ok(hits) if hits.is_empty() => {
                println!("srclint: clean ({} rules)", RULES.len());
            }
            Ok(hits) => {
                for hit in &hits {
                    eprintln!("srclint: {hit}");
                }
                failures += hits.len() as u32;
            }
            Err(e) => {
                eprintln!("slin-analyze: lint i/o error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("slin-analyze: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
