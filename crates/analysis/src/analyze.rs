//! Bounded symbolic certification of partitioner soundness.
//!
//! The soundness contract in `slin_adt::partition` has two obligations for
//! every input a partitioner classifies:
//!
//! 1. **Same-key output projection** — the output of a classified input
//!    after any history equals its output after the same-key projection of
//!    that history (`f_T(h ::: i) = f_T(h|k ::: i)`);
//! 2. **Cross-key transition commutation** — two classified inputs with
//!    distinct keys commute as state transitions, and neither changes the
//!    other's output when reordered.
//!
//! [`certify`] discharges both *exhaustively* over the ADT's enumerable
//! input alphabet ([`DomainSpec`]) for every history up to a configured
//! depth. Exploration is a breadth-first walk over histories of classified
//! inputs, memoized on the **signature** `(full state, per-key projected
//! states)`: both obligations at a node depend only on that signature, so
//! visiting each signature once is exhaustive up to the depth bound while
//! keeping the walk polynomial in the reachable quotient graph rather than
//! exponential in the alphabet.
//!
//! On success the run is summarized as a [`Certificate`]; on failure the
//! offending history is greedily shrunk and returned as a replayable
//! [`Counterexample`] whose [`Counterexample::to_trace`] diverges under
//! partitioned vs monolithic checking.

use crate::cert::{short_type_name, Certificate};
use slin_adt::{Adt, DomainSpec, Partitioner};
use slin_trace::{Action, ClientId, PhaseId, Trace};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt::Write as _;

/// Bounds for one [`certify`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeConfig {
    /// Maximum history length explored (every obligation is additionally
    /// probed with 1–2 extra inputs beyond the history).
    pub depth: usize,
    /// Abort ceiling on distinct `(state, projections)` signatures.
    pub max_states: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            depth: 4,
            max_states: 1 << 18,
        }
    }
}

/// Which contract obligation a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Obligation {
    /// Same-key output projection (`f_T(h ::: i) ≠ f_T(h|k ::: i)`).
    Projection,
    /// Cross-key transition commutation.
    Commutation,
}

/// A concrete, minimal-by-greedy-shrinking violation of the contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample<T: Adt> {
    /// Which obligation failed.
    pub obligation: Obligation,
    /// The history after which the obligation fails (classified inputs).
    pub history: Vec<T::Input>,
    /// The classified probe input whose behaviour the history corrupts.
    pub probe: T::Input,
    /// For [`Obligation::Commutation`]: the other-key input that fails to
    /// commute with `probe` after `history`.
    pub partner: Option<T::Input>,
    /// Human-readable rendering of the disagreeing observations.
    pub detail: String,
}

impl<T: Adt> Counterexample<T> {
    /// Total number of inputs in the replayable history (history + probe
    /// + partner).
    pub fn len(&self) -> usize {
        self.history.len() + 1 + usize::from(self.partner.is_some())
    }

    /// Counterexamples always contain at least the probe.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The full input sequence the counterexample replays.
    pub fn inputs(&self) -> Vec<T::Input> {
        let mut seq = self.history.clone();
        seq.push(self.probe.clone());
        seq.extend(self.partner.clone());
        seq
    }

    /// Replays the counterexample as a *sequential* trace (each input
    /// invoked and answered in order, outputs from a monolithic replay).
    ///
    /// The trace is linearizable by construction, so a monolithic check
    /// accepts it; a partitioned check under the rejected partitioner
    /// projects per key and — for projection violations — sees outputs no
    /// same-key sequential replay can explain, yielding the verdict
    /// divergence the certificate refusal predicts.
    pub fn to_trace(&self, adt: &T) -> Trace<Action<T::Input, T::Output, ()>> {
        let client = ClientId::new(1);
        let mut state = adt.initial();
        let mut trace = Trace::new();
        for input in self.inputs() {
            let (next, out) = adt.apply(&state, &input);
            state = next;
            trace.push(Action::invoke(client, PhaseId::FIRST, input.clone()));
            trace.push(Action::respond(client, PhaseId::FIRST, input, out));
        }
        trace
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let what = match self.obligation {
            Obligation::Projection => "same-key output projection",
            Obligation::Commutation => "cross-key transition commutation",
        };
        let _ = writeln!(s, "contract violation: {what}");
        let _ = writeln!(s, "  history: {:?}", self.history);
        let _ = writeln!(s, "  probe:   {:?}", self.probe);
        if let Some(p) = &self.partner {
            let _ = writeln!(s, "  partner: {p:?}");
        }
        let _ = write!(s, "  {}", self.detail);
        s
    }
}

/// Why [`certify`] did not produce a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeFailure<T: Adt> {
    /// The partitioner violates the contract; here is a minimal replay.
    Unsound(Counterexample<T>),
    /// The quotient state space outgrew [`AnalyzeConfig::max_states`]
    /// before the depth bound — no verdict either way.
    StateSpaceExceeded {
        /// Signatures explored before aborting.
        explored: usize,
    },
}

/// One BFS node: a concrete history with its replayed full state and
/// per-key projected states.
struct Node<T: Adt, K> {
    history: Vec<T::Input>,
    state: T::State,
    proj: BTreeMap<K, T::State>,
}

/// Exhaustively checks both contract obligations for `partitioner` over
/// `adt`'s enumerable domain, up to `cfg.depth`-length histories.
///
/// Unclassified domain inputs (key `None`) are excluded from exploration:
/// the checkers fall back to monolithic checking whenever a trace contains
/// one, so the contract only constrains classified inputs.
///
/// # Example
///
/// ```
/// use slin_adt::{KvKeyPartitioner, KvStore};
/// use slin_analysis::{certify, AnalyzeConfig};
/// let cert = certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
/// assert_eq!(cert.adt, "KvStore");
/// assert!(cert.verify());
/// ```
pub fn certify<T, P>(
    adt: &T,
    partitioner: &P,
    cfg: &AnalyzeConfig,
) -> Result<Certificate, AnalyzeFailure<T>>
where
    T: DomainSpec,
    P: Partitioner<T>,
{
    let domain = adt.input_domain();
    let classified: Vec<(T::Input, P::Key)> = domain
        .iter()
        .filter_map(|i| partitioner.key_of(i).map(|k| (i.clone(), k)))
        .collect();
    let keys: BTreeSet<P::Key> = classified.iter().map(|(_, k)| k.clone()).collect();

    let mut projection_checks = 0u64;
    let mut commutation_checks = 0u64;
    let mut visited: HashSet<Signature<T, P::Key>> = HashSet::new();
    let mut queue: VecDeque<Node<T, P::Key>> = VecDeque::new();

    let root = Node {
        history: Vec::new(),
        state: adt.initial(),
        proj: BTreeMap::new(),
    };
    visited.insert(signature(&root));
    queue.push_back(root);

    while let Some(node) = queue.pop_front() {
        // Obligation 1: every classified probe answers identically after
        // the full history and after its same-key projection.
        for (input, key) in &classified {
            projection_checks += 1;
            let full_out = adt.apply(&node.state, input).1;
            let proj_state = node.proj.get(key).cloned().unwrap_or_else(|| adt.initial());
            let proj_out = adt.apply(&proj_state, input).1;
            if full_out != proj_out {
                return Err(AnalyzeFailure::Unsound(shrink_projection(
                    adt,
                    partitioner,
                    node.history,
                    input.clone(),
                )));
            }
        }
        // Obligation 2: distinct-key classified pairs commute as
        // transitions and preserve each other's outputs.
        for a in 0..classified.len() {
            for b in (a + 1)..classified.len() {
                let (i, ki) = &classified[a];
                let (j, kj) = &classified[b];
                if ki == kj {
                    continue;
                }
                commutation_checks += 1;
                if commutation_violation(adt, &node.state, i, j).is_some() {
                    return Err(AnalyzeFailure::Unsound(shrink_commutation(
                        adt,
                        node.history,
                        i.clone(),
                        j.clone(),
                    )));
                }
            }
        }
        // Expand by one more classified input, up to the depth bound.
        if node.history.len() >= cfg.depth {
            continue;
        }
        for (input, key) in &classified {
            let next_state = adt.apply(&node.state, input).0;
            let mut proj = node.proj.clone();
            let entry = proj.entry(key.clone()).or_insert_with(|| adt.initial());
            *entry = adt.apply(entry, input).0;
            let mut history = node.history.clone();
            history.push(input.clone());
            let next = Node {
                history,
                state: next_state,
                proj,
            };
            if visited.insert(signature(&next)) {
                if visited.len() > cfg.max_states {
                    return Err(AnalyzeFailure::StateSpaceExceeded {
                        explored: visited.len(),
                    });
                }
                queue.push_back(next);
            }
        }
    }

    Ok(Certificate {
        adt: short_type_name::<T>().to_string(),
        partitioner: short_type_name::<P>().to_string(),
        depth: cfg.depth,
        alphabet: domain.len(),
        classified: classified.len(),
        keys: keys.len(),
        states: visited.len(),
        projection_checks,
        commutation_checks,
        content_hash: String::new(),
    }
    .sealed())
}

/// The memo key of a search node: full state plus every per-key
/// projected state. All contract obligations at a node are functions of
/// this signature alone, so quotienting the BFS on it is exhaustive.
type Signature<T, K> = (<T as Adt>::State, Vec<(K, <T as Adt>::State)>);

fn signature<T: Adt, K: Clone + Ord>(node: &Node<T, K>) -> Signature<T, K> {
    (
        node.state.clone(),
        node.proj
            .iter()
            .map(|(k, s)| (k.clone(), s.clone()))
            .collect(),
    )
}

/// Checks the commutation obligation for `(i, j)` at `state`; returns the
/// disagreement rendering on violation.
fn commutation_violation<T: Adt>(
    adt: &T,
    state: &T::State,
    i: &T::Input,
    j: &T::Input,
) -> Option<String> {
    let (s_i, out_i) = adt.apply(state, i);
    let (s_ij, out_j_after_i) = adt.apply(&s_i, j);
    let (s_j, out_j) = adt.apply(state, j);
    let (s_ji, out_i_after_j) = adt.apply(&s_j, i);
    if s_ij != s_ji {
        Some(format!(
            "states diverge: {i:?};{j:?} reaches {s_ij:?} but {j:?};{i:?} reaches {s_ji:?}"
        ))
    } else if out_i != out_i_after_j {
        Some(format!(
            "output of {i:?} changes across reorder: {out_i:?} vs {out_i_after_j:?}"
        ))
    } else if out_j != out_j_after_i {
        Some(format!(
            "output of {j:?} changes across reorder: {out_j:?} vs {out_j_after_i:?}"
        ))
    } else {
        None
    }
}

/// Does the projection obligation fail for `(history, probe)`? Returns the
/// disagreement rendering if so.
fn projection_violation<T, P>(
    adt: &T,
    partitioner: &P,
    history: &[T::Input],
    probe: &T::Input,
) -> Option<String>
where
    T: Adt,
    P: Partitioner<T>,
{
    let key = partitioner.key_of(probe)?;
    let full_out = adt.apply(&adt.run(history), probe).1;
    let projected: Vec<T::Input> = history
        .iter()
        .filter(|i| partitioner.key_of(i).as_ref() == Some(&key))
        .cloned()
        .collect();
    let proj_out = adt.apply(&adt.run(&projected), probe).1;
    (full_out != proj_out).then(|| {
        format!(
            "full history answers {full_out:?}, same-key projection {projected:?} \
             answers {proj_out:?}"
        )
    })
}

/// Greedily drops history inputs while the projection violation persists.
fn shrink_projection<T, P>(
    adt: &T,
    partitioner: &P,
    mut history: Vec<T::Input>,
    probe: T::Input,
) -> Counterexample<T>
where
    T: Adt,
    P: Partitioner<T>,
{
    loop {
        let mut shrunk = false;
        for idx in 0..history.len() {
            let mut candidate = history.clone();
            candidate.remove(idx);
            if projection_violation(adt, partitioner, &candidate, &probe).is_some() {
                history = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    let detail = projection_violation(adt, partitioner, &history, &probe)
        .expect("shrinking preserves the violation");
    Counterexample {
        obligation: Obligation::Projection,
        history,
        probe,
        partner: None,
        detail,
    }
}

/// Greedily drops history inputs while the commutation violation persists.
fn shrink_commutation<T: Adt>(
    adt: &T,
    mut history: Vec<T::Input>,
    i: T::Input,
    j: T::Input,
) -> Counterexample<T> {
    loop {
        let mut shrunk = false;
        for idx in 0..history.len() {
            let mut candidate = history.clone();
            candidate.remove(idx);
            if commutation_violation(adt, &adt.run(&candidate), &i, &j).is_some() {
                history = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    let detail = commutation_violation(adt, &adt.run(&history), &i, &j)
        .expect("shrinking preserves the violation");
    Counterexample {
        obligation: Obligation::Commutation,
        history,
        probe: i,
        partner: Some(j),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::BogusCounterPartitioner;
    use slin_adt::{
        Counter, CounterVecPartitioner, CounterVector, KvKeyPartitioner, KvStore,
        RegArrayPartitioner, RegisterArray, Set, SetElemPartitioner,
    };

    #[test]
    fn shipped_partitioners_certify_at_default_depth() {
        let cfg = AnalyzeConfig::default();
        assert!(certify(&KvStore, &KvKeyPartitioner, &cfg).is_ok());
        assert!(certify(&Set, &SetElemPartitioner, &cfg).is_ok());
        assert!(certify(&RegisterArray, &RegArrayPartitioner, &cfg).is_ok());
        assert!(certify(&CounterVector, &CounterVecPartitioner, &cfg).is_ok());
    }

    #[test]
    fn certificates_carry_run_statistics() {
        let cert = certify(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
        assert_eq!(cert.adt, "KvStore");
        assert_eq!(cert.partitioner, "KvKeyPartitioner");
        assert_eq!(cert.depth, 4);
        assert_eq!(cert.alphabet, 8);
        assert_eq!(cert.classified, 8);
        assert_eq!(cert.keys, 2);
        assert!(cert.states > 1);
        assert!(cert.projection_checks >= cert.states as u64);
        assert!(cert.verify());
    }

    #[test]
    fn bogus_counter_partitioner_is_rejected_with_a_short_replay() {
        let failure = certify(
            &Counter,
            &BogusCounterPartitioner,
            &AnalyzeConfig::default(),
        )
        .unwrap_err();
        let AnalyzeFailure::Unsound(cex) = failure else {
            panic!("expected a counterexample");
        };
        assert!(cex.len() <= 4, "counterexample too long: {}", cex.len());
        let trace = cex.to_trace(&Counter);
        assert_eq!(trace.len(), cex.len() * 2);
    }

    #[test]
    fn state_space_ceiling_aborts_without_a_verdict() {
        let cfg = AnalyzeConfig {
            depth: 4,
            max_states: 4,
        };
        assert!(matches!(
            certify(&KvStore, &KvKeyPartitioner, &cfg),
            Err(AnalyzeFailure::StateSpaceExceeded { .. })
        ));
    }

    #[test]
    fn depth_zero_still_checks_commutation_at_the_initial_state() {
        let cfg = AnalyzeConfig {
            depth: 0,
            max_states: 1 << 10,
        };
        // The bogus partitioner already fails at the initial state: the
        // increment/read pair it splits across keys does not commute.
        assert!(matches!(
            certify(&Counter, &BogusCounterPartitioner, &cfg),
            Err(AnalyzeFailure::Unsound(_))
        ));
    }
}
