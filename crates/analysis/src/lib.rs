//! Static certification of partitioner soundness, plus a workspace
//! concurrency lint — the `slin-analyze` toolchain.
//!
//! The partitioned and streaming fast paths in `slin-core` are sound only
//! if the user's [`Partitioner`](slin_adt::Partitioner) upholds the
//! product-factoring contract documented in `slin_adt::partition`. This
//! crate turns that prose contract into a decision procedure:
//!
//! * [`certify`] exhaustively explores every history over an ADT's
//!   enumerable input domain ([`slin_adt::DomainSpec`]) up to a depth
//!   bound, discharging both contract obligations, and returns either a
//!   machine-readable [`Certificate`] or a shrunk, replayable
//!   [`Counterexample`];
//! * [`CertStore`] registers verified certificates for the session layer
//!   (`SessionBuilder::partitioner_certified`, daemon `require_cert`);
//! * [`certify_switch`] does the same for the **switch/init contract**:
//!   it proves the exact init relation decomposes per independence class
//!   over the ADT's enumerable switch domain, emitting a
//!   [`SwitchCert`] (`slin-cert/v2`) that unlocks keyed phase-trace
//!   checking, or a replayable [`SwitchCounterexample`];
//! * [`lint_workspace`] enforces the repo concurrency policy on the
//!   source tree (`slin-analyze --lint-src`);
//! * [`fixtures`] holds deliberately unsound partitioners the analyzer
//!   must reject — the negative half of the test suite.
//!
//! The `slin-analyze` binary drives all of it; CI commits the resulting
//! `analysis/certs/*.json` and fails on drift (see `ci/cert_check.py`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod cert;
pub mod fixtures;
pub mod srclint;
pub mod switch;

pub use analyze::{certify, AnalyzeConfig, AnalyzeFailure, Counterexample, Obligation};
pub use cert::{
    short_type_name, CertError, CertStore, Certificate, SwitchCert, CERT_SCHEMA, SWITCH_CERT_SCHEMA,
};
pub use srclint::{lint_workspace, LintHit, RULES};
pub use switch::{
    certify_switch, SwitchCounterexample, SwitchFailure, SwitchObligation, EXACT_RELATION,
};
