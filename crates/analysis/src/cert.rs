//! Machine-readable certificates of partitioner soundness.
//!
//! A [`Certificate`] records that the bounded symbolic exploration in
//! [`crate::analyze`] discharged both contract obligations of a
//! `(Adt, Partitioner)` pair up to a depth, together with the state-space
//! statistics of the run and a content hash over all of it. Certificates
//! are serialized as stable, hand-built JSON (no timestamps, no map
//! iteration order) so regenerating one from the same source tree yields
//! the same bytes — CI commits them under `analysis/certs/` and rejects
//! drift.

use std::collections::BTreeMap;
use std::fmt;

/// Certificate schema identifier, bumped on any field change.
pub const CERT_SCHEMA: &str = "slin-cert/v1";

/// Switch-independence certificate schema identifier (the `v2` section
/// committed alongside the v1 partitioner certificates).
pub const SWITCH_CERT_SCHEMA: &str = "slin-cert/v2";

/// The last path segment of `std::any::type_name::<T>()` — the canonical
/// short name certificates use for ADTs and partitioners.
pub fn short_type_name<T: ?Sized>() -> &'static str {
    let full = std::any::type_name::<T>();
    full.rsplit("::").next().unwrap_or(full)
}

/// A successful bounded-exploration run: the named partitioner upholds the
/// soundness contract for the named ADT over every history of classified
/// domain inputs up to `depth`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Short type name of the certified ADT (e.g. `KvStore`).
    pub adt: String,
    /// Short type name of the certified partitioner.
    pub partitioner: String,
    /// Exploration depth (maximum history length).
    pub depth: usize,
    /// Size of the ADT's enumerable input alphabet.
    pub alphabet: usize,
    /// How many alphabet inputs the partitioner classified (`Some` key).
    pub classified: usize,
    /// Distinct independence classes among the classified inputs.
    pub keys: usize,
    /// Distinct `(state, projections)` signatures explored.
    pub states: usize,
    /// Same-key output-projection obligations checked.
    pub projection_checks: u64,
    /// Cross-key transition-commutation obligations checked.
    pub commutation_checks: u64,
    /// FNV-1a 64-bit hash (hex) over every field above, in order.
    pub content_hash: String,
}

impl Certificate {
    /// Computes the content hash for the non-hash fields.
    pub fn compute_hash(&self) -> String {
        let canon = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            CERT_SCHEMA,
            self.adt,
            self.partitioner,
            self.depth,
            self.alphabet,
            self.classified,
            self.keys,
            self.states,
            self.projection_checks,
            self.commutation_checks,
        );
        format!("fnv1a64:{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Fills in `content_hash` from the other fields.
    pub fn sealed(mut self) -> Certificate {
        self.content_hash = self.compute_hash();
        self
    }

    /// Whether `content_hash` matches the other fields.
    pub fn verify(&self) -> bool {
        self.content_hash == self.compute_hash()
    }

    /// Stable JSON rendering (2-space indent, fixed field order, trailing
    /// newline) — the exact bytes committed under `analysis/certs/`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"adt\": \"{}\",\n  \"partitioner\": \"{}\",\n  \
             \"depth\": {},\n  \"alphabet\": {},\n  \"classified\": {},\n  \"keys\": {},\n  \
             \"states\": {},\n  \"projection_checks\": {},\n  \"commutation_checks\": {},\n  \
             \"content_hash\": \"{}\"\n}}\n",
            CERT_SCHEMA,
            json_escape(&self.adt),
            json_escape(&self.partitioner),
            self.depth,
            self.alphabet,
            self.classified,
            self.keys,
            self.states,
            self.projection_checks,
            self.commutation_checks,
            json_escape(&self.content_hash),
        )
    }

    /// The committed filename for this certificate.
    pub fn file_name(&self) -> String {
        format!("{}__{}.json", self.adt, self.partitioner)
    }
}

/// A successful switch-independence run: under the named init relation,
/// every switch value in the ADT's enumerable switch domain decomposes per
/// independence class of the named partitioner — candidate-set projection
/// commutes with per-key projection, and switch interpretation commutes
/// with cross-class transitions — over every history of classified domain
/// inputs up to `depth`.
///
/// This is the `slin-cert/v2` schema committed alongside the v1
/// partitioner certificates; installing one through the `slin-core`
/// session builder unlocks keyed (per-class) checking of phase traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCert {
    /// Short type name of the certified ADT (e.g. `KvStore`).
    pub adt: String,
    /// Short type name of the certified partitioner.
    pub partitioner: String,
    /// Short type name of the init relation the decomposition is proved
    /// for (e.g. `ExactInit`).
    pub rinit: String,
    /// Exploration depth (maximum history length).
    pub depth: usize,
    /// Size of the ADT's enumerable input alphabet.
    pub alphabet: usize,
    /// Size of the ADT's enumerable switch/phase domain.
    pub switch_values: usize,
    /// How many alphabet inputs the partitioner classified (`Some` key).
    pub classified: usize,
    /// Distinct independence classes among the classified inputs.
    pub keys: usize,
    /// Distinct `(state, projections)` signatures explored.
    pub states: usize,
    /// Init-candidate projection obligations checked.
    pub projection_checks: u64,
    /// Switch-interpretation/cross-class commutation obligations checked.
    pub commutation_checks: u64,
    /// FNV-1a 64-bit hash (hex) over every field above, in order.
    pub content_hash: String,
}

impl SwitchCert {
    /// Computes the content hash for the non-hash fields.
    pub fn compute_hash(&self) -> String {
        let canon = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            SWITCH_CERT_SCHEMA,
            self.adt,
            self.partitioner,
            self.rinit,
            self.depth,
            self.alphabet,
            self.switch_values,
            self.classified,
            self.keys,
            self.states,
            self.projection_checks,
            self.commutation_checks,
        );
        format!("fnv1a64:{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Fills in `content_hash` from the other fields.
    pub fn sealed(mut self) -> SwitchCert {
        self.content_hash = self.compute_hash();
        self
    }

    /// Whether `content_hash` matches the other fields.
    pub fn verify(&self) -> bool {
        self.content_hash == self.compute_hash()
    }

    /// Stable JSON rendering (2-space indent, fixed field order, trailing
    /// newline) — the exact bytes committed under `analysis/certs/`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"adt\": \"{}\",\n  \"partitioner\": \"{}\",\n  \
             \"rinit\": \"{}\",\n  \"depth\": {},\n  \"alphabet\": {},\n  \
             \"switch_values\": {},\n  \"classified\": {},\n  \"keys\": {},\n  \
             \"states\": {},\n  \"projection_checks\": {},\n  \"commutation_checks\": {},\n  \
             \"content_hash\": \"{}\"\n}}\n",
            SWITCH_CERT_SCHEMA,
            json_escape(&self.adt),
            json_escape(&self.partitioner),
            json_escape(&self.rinit),
            self.depth,
            self.alphabet,
            self.switch_values,
            self.classified,
            self.keys,
            self.states,
            self.projection_checks,
            self.commutation_checks,
            json_escape(&self.content_hash),
        )
    }

    /// The committed filename for this certificate (the `__switch` suffix
    /// keeps it apart from the pair's v1 certificate).
    pub fn file_name(&self) -> String {
        format!("{}__{}__switch.json", self.adt, self.partitioner)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Why a certificate was rejected when threading it through a session
/// builder (see `SessionBuilder::partitioner_certified` in `slin-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The certificate's content hash does not match its fields.
    BadHash,
    /// The certificate names a different ADT than the session model's.
    AdtMismatch {
        /// ADT name the session model replays.
        expected: String,
        /// ADT name the certificate was issued for.
        found: String,
    },
    /// The certificate names a different partitioner type.
    PartitionerMismatch {
        /// Partitioner type handed to the builder.
        expected: String,
        /// Partitioner name the certificate was issued for.
        found: String,
    },
    /// No certificate covers this `(ADT, partitioner)` pair and the policy
    /// requires one.
    Uncertified {
        /// ADT name of the session model.
        adt: String,
        /// Partitioner type handed to the builder.
        partitioner: String,
    },
    /// The switch certificate names a different init relation than the
    /// session model interprets switches with.
    RelationMismatch {
        /// Init relation name of the session model.
        expected: String,
        /// Init relation name the certificate was issued for.
        found: String,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadHash => write!(f, "certificate content hash does not match its fields"),
            CertError::AdtMismatch { expected, found } => write!(
                f,
                "certificate is for ADT `{found}`, session model replays `{expected}`"
            ),
            CertError::PartitionerMismatch { expected, found } => write!(
                f,
                "certificate is for partitioner `{found}`, builder was given `{expected}`"
            ),
            CertError::Uncertified { adt, partitioner } => write!(
                f,
                "no certificate for partitioner `{partitioner}` over ADT `{adt}` \
                 (run `slin-analyze --all`, or relax the cert policy)"
            ),
            CertError::RelationMismatch { expected, found } => write!(
                f,
                "switch certificate is for init relation `{found}`, session model \
                 interprets switches with `{expected}`"
            ),
        }
    }
}

impl std::error::Error for CertError {}

/// An in-memory registry of verified certificates, keyed by
/// `(adt, partitioner)` short names.
///
/// `Strategy::Auto` in `slin-core` consults one of these (when installed)
/// to decide whether a partitioner may be trusted; the daemon keeps a
/// process-wide store for its shipped pairs.
#[derive(Debug, Clone, Default)]
pub struct CertStore {
    certs: BTreeMap<(String, String), Certificate>,
    switch_certs: BTreeMap<(String, String, String), SwitchCert>,
}

impl CertStore {
    /// An empty store.
    pub fn new() -> Self {
        CertStore::default()
    }

    /// Verifies and registers a certificate. Rejects hash mismatches.
    pub fn register(&mut self, cert: Certificate) -> Result<(), CertError> {
        if !cert.verify() {
            return Err(CertError::BadHash);
        }
        self.certs
            .insert((cert.adt.clone(), cert.partitioner.clone()), cert);
        Ok(())
    }

    /// Looks up the certificate for an `(adt, partitioner)` pair.
    pub fn get(&self, adt: &str, partitioner: &str) -> Option<&Certificate> {
        self.certs.get(&(adt.to_string(), partitioner.to_string()))
    }

    /// Whether the pair is certified.
    pub fn is_certified(&self, adt: &str, partitioner: &str) -> bool {
        self.get(adt, partitioner).is_some()
    }

    /// Verifies and registers a switch-independence certificate. Rejects
    /// hash mismatches.
    pub fn register_switch(&mut self, cert: SwitchCert) -> Result<(), CertError> {
        if !cert.verify() {
            return Err(CertError::BadHash);
        }
        self.switch_certs.insert(
            (
                cert.adt.clone(),
                cert.partitioner.clone(),
                cert.rinit.clone(),
            ),
            cert,
        );
        Ok(())
    }

    /// Looks up the switch certificate for an `(adt, partitioner, rinit)`
    /// triple.
    pub fn get_switch(&self, adt: &str, partitioner: &str, rinit: &str) -> Option<&SwitchCert> {
        self.switch_certs
            .get(&(adt.to_string(), partitioner.to_string(), rinit.to_string()))
    }

    /// Whether the triple holds a switch-independence certificate.
    pub fn is_switch_certified(&self, adt: &str, partitioner: &str, rinit: &str) -> bool {
        self.get_switch(adt, partitioner, rinit).is_some()
    }

    /// Number of registered switch certificates.
    pub fn switch_len(&self) -> usize {
        self.switch_certs.len()
    }

    /// Number of registered certificates.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether the store holds no certificates of either schema.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty() && self.switch_certs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            adt: "KvStore".into(),
            partitioner: "KvKeyPartitioner".into(),
            depth: 4,
            alphabet: 8,
            classified: 8,
            keys: 2,
            states: 100,
            projection_checks: 800,
            commutation_checks: 1600,
            content_hash: String::new(),
        }
        .sealed()
    }

    #[test]
    fn sealed_certificates_verify_and_tampering_breaks_them() {
        let cert = sample();
        assert!(cert.verify());
        let mut bad = cert.clone();
        bad.depth = 5;
        assert!(!bad.verify());
    }

    #[test]
    fn json_is_stable_and_roundtrips_the_hash() {
        let cert = sample();
        assert_eq!(cert.to_json(), cert.to_json());
        assert!(cert.to_json().contains(&cert.content_hash));
        assert!(cert.to_json().ends_with("}\n"));
    }

    #[test]
    fn store_rejects_tampered_certs_and_answers_lookups() {
        let mut store = CertStore::new();
        let cert = sample();
        store.register(cert.clone()).unwrap();
        assert!(store.is_certified("KvStore", "KvKeyPartitioner"));
        assert!(!store.is_certified("KvStore", "SetElemPartitioner"));
        let mut bad = cert;
        bad.states = 1;
        assert_eq!(store.register(bad), Err(CertError::BadHash));
    }

    #[test]
    fn short_type_name_takes_last_segment() {
        assert_eq!(short_type_name::<Certificate>(), "Certificate");
        assert_eq!(short_type_name::<u32>(), "u32");
    }

    fn sample_switch() -> SwitchCert {
        SwitchCert {
            adt: "KvStore".into(),
            partitioner: "KvKeyPartitioner".into(),
            rinit: "ExactInit".into(),
            depth: 3,
            alphabet: 8,
            switch_values: 73,
            classified: 8,
            keys: 2,
            states: 50,
            projection_checks: 400,
            commutation_checks: 900,
            content_hash: String::new(),
        }
        .sealed()
    }

    #[test]
    fn switch_certs_seal_verify_and_serialize_stably() {
        let cert = sample_switch();
        assert!(cert.verify());
        assert!(cert.to_json().contains("\"schema\": \"slin-cert/v2\""));
        assert!(cert.to_json().contains("\"rinit\": \"ExactInit\""));
        assert!(cert.to_json().ends_with("}\n"));
        assert_eq!(cert.file_name(), "KvStore__KvKeyPartitioner__switch.json");
        let mut bad = cert;
        bad.switch_values = 1;
        assert!(!bad.verify());
    }

    #[test]
    fn store_keys_switch_certs_by_relation_too() {
        let mut store = CertStore::new();
        store.register_switch(sample_switch()).unwrap();
        assert!(store.is_switch_certified("KvStore", "KvKeyPartitioner", "ExactInit"));
        assert!(!store.is_switch_certified("KvStore", "KvKeyPartitioner", "ConsensusInit"));
        assert!(
            !store.is_certified("KvStore", "KvKeyPartitioner"),
            "v2 is not v1"
        );
        assert_eq!(store.switch_len(), 1);
        assert!(!store.is_empty());
        let mut bad = sample_switch();
        bad.keys = 9;
        assert_eq!(store.register_switch(bad), Err(CertError::BadHash));
    }
}
