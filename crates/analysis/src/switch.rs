//! Bounded symbolic certification of **switch independence**: does the
//! exact init relation decompose per independence class?
//!
//! Phase traces (speculative linearizability, Defs. 19/25–31) interpret
//! every switch action through the init relation `rinit`: the candidate
//! history a switch carries seeds the chain search, and its longest common
//! prefix constrains every commit. Partitioned and streaming checking of
//! phase traces is sound only when that interpretation *factors through
//! the partitioner's independence classes* — otherwise a candidate history
//! can couple two classes through cross-key order, and per-class checking
//! diverges from the monolithic verdict.
//!
//! [`certify_switch`] discharges two obligations exhaustively over the
//! ADT's enumerable [`DomainSpec::switch_domain`], at every history of
//! classified inputs up to a configured depth:
//!
//! 1. **Candidate projection** — for every switch value `v`, history `h`
//!    and classified probe `i` with key `k`, the probe answers identically
//!    after the monolithic interpretation (`run(v ::: h)`) and after the
//!    per-class one (`run(v|k ::: h|k)`). This is "per-key `rinit`
//!    projection equals projection of `rinit`" made operational for the
//!    exact relation, whose candidate set is the value itself.
//! 2. **Interpretation commutation** — replaying `v` from any reachable
//!    state equals replaying its per-class components grouped by ascending
//!    key, and any two class components commute. A value that only reaches
//!    a state through a specific cross-class interleaving does not factor,
//!    and per-class seeding would replay it wrong.
//!
//! Like the v1 analyzer, exploration is a breadth-first walk memoized on
//! the `(full state, per-key projected states)` signature — both
//! obligations at a node are functions of that signature and the constant
//! switch domain. Success is summarized as a content-hashed [`SwitchCert`]
//! (`slin-cert/v2`); failure is greedily shrunk to a
//! [`SwitchCounterexample`] whose [`SwitchCounterexample::to_trace`]
//! replays as a real phase trace on which keyed-partitioned and monolithic
//! speculative checking diverge.

use crate::analyze::AnalyzeConfig;
use crate::cert::{short_type_name, SwitchCert};
use slin_adt::{Adt, DomainSpec, Partitioner};
use slin_trace::{Action, ClientId, PhaseId, Trace};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::fmt::Write as _;

/// Short name of the init relation whose decomposition [`certify_switch`]
/// proves: the exact relation, whose candidate set is the carried history
/// itself. Consumers match this against their relation's type name.
pub const EXACT_RELATION: &str = "ExactInit";

/// A replayable phase trace over an ADT's inputs/outputs, with switch
/// actions carrying candidate init histories.
pub type PhaseTrace<T> =
    Trace<Action<<T as Adt>::Input, <T as Adt>::Output, Vec<<T as Adt>::Input>>>;

/// Classifiable switch values paired with their per-class components.
type Candidates<T, P> = Vec<(
    Vec<<T as Adt>::Input>,
    BTreeMap<<P as Partitioner<T>>::Key, Vec<<T as Adt>::Input>>,
)>;

/// Which switch-independence obligation a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchObligation {
    /// Per-class interpretation of a candidate history answers a probe
    /// differently than the monolithic interpretation.
    CandidateProjection,
    /// Replaying a candidate history does not commute with grouping it
    /// into per-class components.
    InterpretationCommutation,
}

/// A concrete, minimal-by-greedy-shrinking switch-independence violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCounterexample<T: Adt> {
    /// Which obligation failed.
    pub obligation: SwitchObligation,
    /// Committed operations after the switch (classified inputs).
    pub history: Vec<T::Input>,
    /// The candidate init history the switch carries.
    pub value: Vec<T::Input>,
    /// The classified probe whose answer the decomposition corrupts
    /// (`None` when only states diverge and no single probe observes it).
    pub probe: Option<T::Input>,
    /// Human-readable rendering of the disagreeing observations.
    pub detail: String,
}

impl<T: Adt> SwitchCounterexample<T> {
    /// Total number of inputs in the replayable scenario (candidate value
    /// + committed history + probe).
    pub fn len(&self) -> usize {
        self.value.len() + self.history.len() + usize::from(self.probe.is_some())
    }

    /// Counterexamples always contain at least one input.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays the counterexample as a **phase trace**: one client enters
    /// phase 2 through an init switch carrying the candidate value, then
    /// the history and probe commit sequentially with outputs from the
    /// monolithic interpretation (`run(value ::: …)`).
    ///
    /// Under a speculative checker with the exact init relation and phase
    /// pair `(2, 3)`, the monolithic path accepts this trace — every
    /// output is explained by the chain `value ::: history ::: probe`. A
    /// keyed (per-class) check under the rejected partitioner seeds each
    /// class with the *projected* value and, for candidate-projection
    /// violations, cannot explain the probe's output: the verdict
    /// divergence the certificate refusal predicts.
    pub fn to_trace(&self, adt: &T) -> PhaseTrace<T> {
        let m = PhaseId::new(2);
        let mut trace = Trace::new();
        let mut state = adt.run(&self.value);
        let mut commits: Vec<T::Input> = self.history.clone();
        commits.extend(self.probe.clone());
        // The switch's pending input is the first commit; any further
        // commits are invoked (and answered) by fresh clients.
        let mut pending = commits.into_iter();
        let Some(first) = pending.next() else {
            return trace;
        };
        trace.push(Action::switch(
            ClientId::new(1),
            m,
            first.clone(),
            self.value.clone(),
        ));
        let (next, out) = adt.apply(&state, &first);
        state = next;
        trace.push(Action::respond(ClientId::new(1), m, first, out));
        for (n, input) in pending.enumerate() {
            let c = ClientId::new(n as u32 + 2);
            trace.push(Action::invoke(c, m, input.clone()));
            let (next, out) = adt.apply(&state, &input);
            state = next;
            trace.push(Action::respond(c, m, input, out));
        }
        trace
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let what = match self.obligation {
            SwitchObligation::CandidateProjection => "init-candidate projection",
            SwitchObligation::InterpretationCommutation => "switch-interpretation commutation",
        };
        let _ = writeln!(s, "switch-independence violation: {what}");
        let _ = writeln!(s, "  value:   {:?}", self.value);
        let _ = writeln!(s, "  history: {:?}", self.history);
        if let Some(p) = &self.probe {
            let _ = writeln!(s, "  probe:   {p:?}");
        }
        let _ = write!(s, "  {}", self.detail);
        s
    }
}

/// Why [`certify_switch`] did not produce a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchFailure<T: Adt> {
    /// The init relation does not decompose over the partitioner's
    /// classes; here is a minimal replay.
    Unsound(SwitchCounterexample<T>),
    /// The quotient state space outgrew [`AnalyzeConfig::max_states`]
    /// before the depth bound — no verdict either way.
    StateSpaceExceeded {
        /// Signatures explored before aborting.
        explored: usize,
    },
}

/// One BFS node: a candidate value followed by a concrete post-switch
/// history, with the monolithic replayed state and the per-key projected
/// states (projected value, then projected history).
struct Node<T: Adt, K> {
    value: Vec<T::Input>,
    history: Vec<T::Input>,
    state: T::State,
    proj: BTreeMap<K, T::State>,
}

/// Exhaustively checks both switch-independence obligations for
/// `partitioner` over `adt`'s enumerable input and switch domains, up to
/// `cfg.depth`-length post-switch histories.
///
/// Switch values containing an unclassified input are skipped: the keyed
/// checker falls back to monolithic checking whenever it cannot classify a
/// candidate element, so the certificate only speaks for classifiable
/// values.
///
/// # Example
///
/// ```
/// use slin_adt::{KvKeyPartitioner, KvStore};
/// use slin_analysis::{certify_switch, AnalyzeConfig};
/// let cert = certify_switch(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
/// assert_eq!(cert.rinit, "ExactInit");
/// assert!(cert.verify());
/// ```
pub fn certify_switch<T, P>(
    adt: &T,
    partitioner: &P,
    cfg: &AnalyzeConfig,
) -> Result<SwitchCert, SwitchFailure<T>>
where
    T: DomainSpec,
    P: Partitioner<T>,
{
    let domain = adt.input_domain();
    let classified: Vec<(T::Input, P::Key)> = domain
        .iter()
        .filter_map(|i| partitioner.key_of(i).map(|k| (i.clone(), k)))
        .collect();
    let keys: BTreeSet<P::Key> = classified.iter().map(|(_, k)| k.clone()).collect();
    let switch_domain = adt.switch_domain();
    // Candidate values with their per-class components, skipping values
    // the partitioner cannot fully classify.
    let candidates: Candidates<T, P> = switch_domain
        .iter()
        .filter_map(|v| {
            let mut parts: BTreeMap<P::Key, Vec<T::Input>> = BTreeMap::new();
            for i in v {
                parts
                    .entry(partitioner.key_of(i)?)
                    .or_default()
                    .push(i.clone());
            }
            Some((v.clone(), parts))
        })
        .collect();

    let mut projection_checks = 0u64;
    let mut commutation_checks = 0u64;
    let mut visited: HashSet<Signature<T, P::Key>> = HashSet::new();
    let mut queue: VecDeque<Node<T, P::Key>> = VecDeque::new();

    // One root per candidate value: the monolithic state replays the full
    // value, the per-key states replay its class components. Both
    // obligations below are functions of the `(state, proj)` signature
    // alone — the candidate and history are carried only so violations
    // shrink into concrete replays — so quotienting the walk on the
    // signature is exhaustive over every (value, history ≤ depth) pair.
    for (value, parts) in &candidates {
        let proj: BTreeMap<P::Key, T::State> = parts
            .iter()
            .map(|(k, component)| (k.clone(), adt.run(component)))
            .collect();
        let root = Node {
            value: value.clone(),
            history: Vec::new(),
            state: adt.run(value),
            proj,
        };
        if visited.insert(signature(&root)) {
            if visited.len() > cfg.max_states {
                return Err(SwitchFailure::StateSpaceExceeded {
                    explored: visited.len(),
                });
            }
            queue.push_back(root);
        }
    }

    while let Some(node) = queue.pop_front() {
        // Obligation 1: every classified probe answers identically after
        // the monolithic interpretation (value, then history) and after
        // the per-class one (projected value, then projected history).
        for (probe, key) in &classified {
            projection_checks += 1;
            let full_out = adt.apply(&node.state, probe).1;
            let class_state = node.proj.get(key).cloned().unwrap_or_else(|| adt.initial());
            let class_out = adt.apply(&class_state, probe).1;
            if full_out != class_out {
                return Err(SwitchFailure::Unsound(shrink_projection(
                    adt,
                    partitioner,
                    node.history,
                    node.value,
                    probe.clone(),
                )));
            }
        }
        // Obligation 2: at every reachable state, every multi-class
        // candidate's interpretation factors per class — grouping by
        // ascending key preserves the reached state, and any two class
        // components commute.
        for (value, parts) in &candidates {
            if parts.len() < 2 {
                continue;
            }
            commutation_checks += 1;
            if commutation_violation::<T, P>(adt, &node.state, value, parts).is_some() {
                let mut prefix = node.value.clone();
                prefix.extend(node.history.iter().cloned());
                return Err(SwitchFailure::Unsound(shrink_commutation(
                    adt,
                    partitioner,
                    prefix,
                    value.clone(),
                )));
            }
        }
        // Expand by one more classified input, up to the depth bound.
        if node.history.len() >= cfg.depth {
            continue;
        }
        for (input, key) in &classified {
            let next_state = adt.apply(&node.state, input).0;
            let mut proj = node.proj.clone();
            let entry = proj.entry(key.clone()).or_insert_with(|| adt.initial());
            *entry = adt.apply(entry, input).0;
            let mut history = node.history.clone();
            history.push(input.clone());
            let next = Node {
                value: node.value.clone(),
                history,
                state: next_state,
                proj,
            };
            if visited.insert(signature(&next)) {
                if visited.len() > cfg.max_states {
                    return Err(SwitchFailure::StateSpaceExceeded {
                        explored: visited.len(),
                    });
                }
                queue.push_back(next);
            }
        }
    }

    Ok(SwitchCert {
        adt: short_type_name::<T>().to_string(),
        partitioner: short_type_name::<P>().to_string(),
        rinit: EXACT_RELATION.to_string(),
        depth: cfg.depth,
        alphabet: domain.len(),
        switch_values: switch_domain.len(),
        classified: classified.len(),
        keys: keys.len(),
        states: visited.len(),
        projection_checks,
        commutation_checks,
        content_hash: String::new(),
    }
    .sealed())
}

/// The memo key of a search node: full replayed state plus every per-key
/// projected state. Both obligations at a node are functions of this
/// signature (and the constant candidate set), so quotienting the BFS on
/// it is exhaustive.
type Signature<T, K> = (<T as Adt>::State, Vec<(K, <T as Adt>::State)>);

fn signature<T: Adt, K: Clone + Ord>(node: &Node<T, K>) -> Signature<T, K> {
    (
        node.state.clone(),
        node.proj
            .iter()
            .map(|(k, s)| (k.clone(), s.clone()))
            .collect(),
    )
}

/// Does the candidate-projection obligation fail for
/// `(history, value, probe)`? Returns the disagreement rendering if so.
fn projection_violation<T, P>(
    adt: &T,
    partitioner: &P,
    history: &[T::Input],
    value: &[T::Input],
    probe: &T::Input,
) -> Option<String>
where
    T: Adt,
    P: Partitioner<T>,
{
    let key = partitioner.key_of(probe)?;
    let keep = |i: &&T::Input| partitioner.key_of(i).as_ref() == Some(&key);
    let mut full = adt.run(value);
    for h in history {
        full = adt.apply(&full, h).0;
    }
    let full_out = adt.apply(&full, probe).1;
    let projected: Vec<T::Input> = value
        .iter()
        .filter(keep)
        .chain(history.iter().filter(keep))
        .cloned()
        .collect();
    let proj_out = adt.apply(&adt.run(&projected), probe).1;
    (full_out != proj_out).then(|| {
        format!(
            "monolithic interpretation answers {full_out:?}, per-class \
             interpretation {projected:?} answers {proj_out:?}"
        )
    })
}

/// Checks the interpretation-commutation obligation for `value` at
/// `state`; returns the disagreement rendering on violation.
fn commutation_violation<T, P>(
    adt: &T,
    state: &T::State,
    value: &[T::Input],
    parts: &BTreeMap<P::Key, Vec<T::Input>>,
) -> Option<String>
where
    T: Adt,
    P: Partitioner<T>,
{
    let run_from = |start: &T::State, inputs: &[T::Input]| {
        inputs.iter().fold(start.clone(), |s, i| adt.apply(&s, i).0)
    };
    let direct = run_from(state, value);
    let grouped: Vec<T::Input> = parts.values().flatten().cloned().collect();
    let factored = run_from(state, &grouped);
    if direct != factored {
        return Some(format!(
            "replaying {value:?} reaches {direct:?}, its per-class grouping \
             {grouped:?} reaches {factored:?}"
        ));
    }
    let components: Vec<&Vec<T::Input>> = parts.values().collect();
    for a in 0..components.len() {
        for b in (a + 1)..components.len() {
            let mut ab = components[a].clone();
            ab.extend(components[b].iter().cloned());
            let mut ba = components[b].clone();
            ba.extend(components[a].iter().cloned());
            let s_ab = run_from(state, &ab);
            let s_ba = run_from(state, &ba);
            if s_ab != s_ba {
                return Some(format!(
                    "class components do not commute: {ab:?} reaches {s_ab:?} \
                     but {ba:?} reaches {s_ba:?}"
                ));
            }
        }
    }
    None
}

/// Re-derives the per-class component map of `value` (shrinking shortens
/// the value, so the map must follow).
fn parts_of<T, P>(partitioner: &P, value: &[T::Input]) -> Option<BTreeMap<P::Key, Vec<T::Input>>>
where
    T: Adt,
    P: Partitioner<T>,
{
    let mut parts: BTreeMap<P::Key, Vec<T::Input>> = BTreeMap::new();
    for i in value {
        parts
            .entry(partitioner.key_of(i)?)
            .or_default()
            .push(i.clone());
    }
    Some(parts)
}

/// Greedily drops history and value inputs while the projection violation
/// persists.
fn shrink_projection<T, P>(
    adt: &T,
    partitioner: &P,
    mut history: Vec<T::Input>,
    mut value: Vec<T::Input>,
    probe: T::Input,
) -> SwitchCounterexample<T>
where
    T: Adt,
    P: Partitioner<T>,
{
    loop {
        let mut shrunk = false;
        for idx in 0..history.len() {
            let mut candidate = history.clone();
            candidate.remove(idx);
            if projection_violation(adt, partitioner, &candidate, &value, &probe).is_some() {
                history = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            for idx in 0..value.len() {
                let mut candidate = value.clone();
                candidate.remove(idx);
                if projection_violation(adt, partitioner, &history, &candidate, &probe).is_some() {
                    value = candidate;
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            break;
        }
    }
    let detail = projection_violation(adt, partitioner, &history, &value, &probe)
        .expect("shrinking preserves the violation");
    SwitchCounterexample {
        obligation: SwitchObligation::CandidateProjection,
        history,
        value,
        probe: Some(probe),
        detail,
    }
}

/// Greedily drops history and value inputs while the commutation
/// violation persists, then looks for a single probe observing it.
fn shrink_commutation<T, P>(
    adt: &T,
    partitioner: &P,
    mut history: Vec<T::Input>,
    mut value: Vec<T::Input>,
) -> SwitchCounterexample<T>
where
    T: DomainSpec,
    P: Partitioner<T>,
{
    let violates = |history: &[T::Input], value: &[T::Input]| {
        parts_of::<T, P>(partitioner, value)
            .filter(|parts| parts.len() >= 2)
            .and_then(|parts| commutation_violation::<T, P>(adt, &adt.run(history), value, &parts))
    };
    loop {
        let mut shrunk = false;
        for idx in 0..history.len() {
            let mut candidate = history.clone();
            candidate.remove(idx);
            if violates(&candidate, &value).is_some() {
                history = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            for idx in 0..value.len() {
                let mut candidate = value.clone();
                candidate.remove(idx);
                if violates(&history, &candidate).is_some() {
                    value = candidate;
                    shrunk = true;
                    break;
                }
            }
        }
        if !shrunk {
            break;
        }
    }
    let detail = violates(&history, &value).expect("shrinking preserves the violation");
    // A probe whose output observes the divergence makes the replay a
    // one-trace verdict divergence; without one the states alone differ.
    let probe = adt
        .input_domain()
        .into_iter()
        .find(|p| projection_violation(adt, partitioner, &history, &value, p).is_some());
    SwitchCounterexample {
        obligation: SwitchObligation::InterpretationCommutation,
        history,
        value,
        probe,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{BogusCounterPartitioner, QueueValuePartitioner};
    use slin_adt::{
        Counter, CounterVecPartitioner, CounterVector, KvKeyPartitioner, KvStore, Queue,
        RegArrayPartitioner, RegisterArray, Set, SetElemPartitioner,
    };

    #[test]
    fn shipped_pairs_certify_switch_independence_at_default_depth() {
        let cfg = AnalyzeConfig::default();
        assert!(certify_switch(&KvStore, &KvKeyPartitioner, &cfg).is_ok());
        assert!(certify_switch(&Set, &SetElemPartitioner, &cfg).is_ok());
        assert!(certify_switch(&RegisterArray, &RegArrayPartitioner, &cfg).is_ok());
        assert!(certify_switch(&CounterVector, &CounterVecPartitioner, &cfg).is_ok());
    }

    #[test]
    fn switch_certs_carry_run_statistics() {
        let cert = certify_switch(&KvStore, &KvKeyPartitioner, &AnalyzeConfig::default()).unwrap();
        assert_eq!(cert.adt, "KvStore");
        assert_eq!(cert.partitioner, "KvKeyPartitioner");
        assert_eq!(cert.rinit, "ExactInit");
        assert_eq!(cert.alphabet, 8);
        assert_eq!(cert.switch_values, 1 + 8 + 64);
        assert_eq!(cert.keys, 2);
        assert!(cert.states > 1);
        assert!(cert.projection_checks > 0);
        assert!(cert.commutation_checks > 0);
        assert!(cert.verify());
    }

    #[test]
    fn bogus_init_relation_is_rejected_with_a_short_replay() {
        let failure = certify_switch(
            &Counter,
            &BogusCounterPartitioner,
            &AnalyzeConfig::default(),
        )
        .unwrap_err();
        let SwitchFailure::Unsound(cex) = failure else {
            panic!("expected a counterexample");
        };
        assert!(cex.len() <= 4, "counterexample too long: {}", cex.len());
        assert!(!cex.value.is_empty(), "the violation needs a switch value");
        let trace = cex.to_trace(&Counter);
        assert!(
            trace.iter().any(|a| a.is_switch()),
            "replay is a phase trace"
        );
    }

    #[test]
    fn order_coupled_values_violate_interpretation_commutation() {
        let failure =
            certify_switch(&Queue, &QueueValuePartitioner, &AnalyzeConfig::default()).unwrap_err();
        let SwitchFailure::Unsound(cex) = failure else {
            panic!("expected a counterexample");
        };
        assert!(cex.len() <= 4, "counterexample too long: {}", cex.len());
    }

    #[test]
    fn state_space_ceiling_aborts_without_a_verdict() {
        let cfg = AnalyzeConfig {
            depth: 4,
            max_states: 4,
        };
        assert!(matches!(
            certify_switch(&KvStore, &KvKeyPartitioner, &cfg),
            Err(SwitchFailure::StateSpaceExceeded { .. })
        ));
    }

    #[test]
    fn certification_is_deterministic() {
        let cfg = AnalyzeConfig::default();
        let a = certify_switch(&KvStore, &KvKeyPartitioner, &cfg).unwrap();
        let b = certify_switch(&KvStore, &KvKeyPartitioner, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }
}
